// Three address-ordering hazards: a map keyed by pointer, std::hash over
// a pointer type, and a pointer→integer cast (address-derived key).
#include <cstdint>
#include <functional>
#include <map>

struct Node {
  int id;
};

std::map<Node*, int> rank;
std::hash<Node*> hasher;

std::uintptr_t key(Node* n) { return reinterpret_cast<std::uintptr_t>(n); }
