// Renderer table: one "ev" spelling per EventKind enumerator.
const char* render_kind(EventKind k) {
  if (k == EventKind::kAlpha) return "alpha";
  if (k == EventKind::kBeta) return "beta";
  return "";
}
