// Fixture twin of the pinned trace::EventKind enum: two kinds, both
// present in every table file the registry pins.
#pragma once
enum class EventKind : unsigned char {
  kAlpha,
  kBeta,
};
