// Parser table: every EventKind enumerator appears as a case.
const char* parse_kind(EventKind k) {
  switch (k) {
    case EventKind::kAlpha:
      return "alpha";
    case EventKind::kBeta:
      return "beta";
  }
  return "";
}
