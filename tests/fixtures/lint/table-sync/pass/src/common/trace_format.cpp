// Binary code table: one byte code per EventKind enumerator.
unsigned char kind_code(EventKind k) {
  if (k == EventKind::kAlpha) return 1;
  if (k == EventKind::kBeta) return 2;
  return 0;
}
