const char* render_kind(EventKind k) {
  return k == EventKind::kAlpha ? "alpha" : "";
}
