// kGamma is declared here but never lands in the parser, code or
// renderer tables — exactly the drift table-sync exists to catch.
#pragma once
enum class EventKind : unsigned char {
  kAlpha,
  kGamma,
};
