unsigned char kind_code(EventKind k) {
  return k == EventKind::kAlpha ? 1 : 0;
}
