const char* parse_kind(EventKind k) {
  if (k == EventKind::kAlpha) return "alpha";
  return "";
}
