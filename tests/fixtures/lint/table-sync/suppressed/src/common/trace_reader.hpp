// Same drift as the fail fixture, excused at the enum declaration (the
// line table-sync findings anchor to).
#pragma once
// glap-lint: allow(table-sync): kGamma ships behind a flag; its table rows land with the decoder
enum class EventKind : unsigned char {
  kAlpha,
  kGamma,
};
