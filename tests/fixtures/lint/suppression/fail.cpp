// Three malformed/stale allows: an unknown rule name, a missing
// justification, and a well-formed allow that silences nothing.
// glap-lint: allow(wallclock): typo'd rule name, should be wall-clock
// glap-lint: allow(banned-random):
// glap-lint: allow(float-narrowing): stale — there is no float anywhere in this file
int x = 0;
