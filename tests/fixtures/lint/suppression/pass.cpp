// Prose that merely *mentions* the directive syntax is not a directive:
// the placeholder below is not a plausible rule name, so the line is
// ignored rather than reported as malformed.
//
// Suppress a rule with: glap-lint: allow(<rule>): <reason>
int x = 0;
