// glap-lint: allow(suppression): fixture pins that even meta findings can be explicitly excused
// glap-lint: allow(wall-clock): deliberately stale allow, excused by the line above
int x = 0;
