// Fixture: the same hazard excused by a justified allow.
#include <vector>

void aggregation_cycle(std::vector<int>& sink) {
  // glap-lint: allow(hot-alloc): grows once on the first round only
  sink.push_back(1);
}
