// Fixture: hot loops reuse preallocated buffers; setup paths may allocate.
#include <memory>
#include <vector>

struct Widget {
  int x = 0;
};

// install() is not a round-loop scope: one-time setup allocation is fine.
std::unique_ptr<Widget> install() { return std::make_unique<Widget>(); }

void learning_cycle(std::vector<int>& scratch, int rounds) {
  scratch.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) scratch.push_back(r);
}
