// Fixture: per-round heap allocation inside round-loop scopes.
#include <memory>
#include <vector>

struct Widget {
  int x = 0;
};

void learning_cycle(std::vector<int>& sink) {
  auto w = std::make_unique<Widget>();  // allocates every round
  int* raw = new int(3);                // allocates every round
  sink.push_back(*raw + w->x);          // no sink.reserve in this file
  delete raw;
}
