// Observed edge sim -> common (declared, fine on its own).
#include "common/c.hpp"
int engine_tick(int v) { return c_base(v); }
