#pragma once
inline int s_step(int v) { return v * 2; }
