#pragma once
inline int c_base(int v) { return v + 1; }
