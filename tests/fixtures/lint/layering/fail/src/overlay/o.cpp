// Observed edge overlay -> sim: undeclared, and overlay has no layers.txt
// entry at all.
#include "sim/s.hpp"
int overlay_probe(int v) { return s_step(v); }
