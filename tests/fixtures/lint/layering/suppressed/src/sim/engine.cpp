// The undeclared edge is excused at the include that induces it.
// glap-lint: allow(layering): migration staging — the edge lands in layers.txt when the split finishes
#include "common/c.hpp"
int engine_tick(int v) { return c_base(v); }
