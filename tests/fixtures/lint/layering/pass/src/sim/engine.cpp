// Declared edge sim -> common: exactly what layers.txt allows.
#include "common/util.hpp"
int engine_step(int v) { return util_clamp(v); }
