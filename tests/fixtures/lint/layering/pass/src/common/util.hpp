// Leaf helper the sim module is declared to depend on.
#pragma once
inline int util_clamp(int v) { return v < 0 ? 0 : v; }
