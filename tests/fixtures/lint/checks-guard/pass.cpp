// GLAP_NO_HOT_CHECKS conditionals must be closed and carry an #else so
// both build flavours compile a real branch.
int checked_get(int* p) {
#ifdef GLAP_NO_HOT_CHECKS
  return *p;
#else
  return p ? *p : 0;
#endif
}
