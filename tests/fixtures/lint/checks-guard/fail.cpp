// Two guard bugs: a GLAP_NO_HOT_CHECKS conditional without an #else
// (one build flavour silently compiles nothing), and GLAP_ENABLE_CHECKS —
// the CMake option name — which is never defined for the compiler.
int checked_get(int* p) {
#ifdef GLAP_NO_HOT_CHECKS
  (void)p;
#endif
#ifdef GLAP_ENABLE_CHECKS
  if (!p) return 0;
#else
  (void)0;
#endif
  return p ? *p : 0;
}
