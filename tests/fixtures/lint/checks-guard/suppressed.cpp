int checked_get(int* p) {
  // glap-lint: allow(checks-guard): fixture for a checks-on-only diagnostic block; nothing is defined in the off flavour on purpose
#ifdef GLAP_NO_HOT_CHECKS
  (void)p;
#endif
#ifdef GLAP_ENABLE_CHECKS  // glap-lint: allow(checks-guard): fixture pins the CMake-name detection under an explicit excuse
  if (!p) return 0;
#else
  (void)0;
#endif
  return p ? *p : 0;
}
