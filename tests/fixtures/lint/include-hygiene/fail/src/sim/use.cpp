// Nothing from the include is referenced, transitively or otherwise.
#include "common/mathx.hpp"
int magnitude(int v) { return v < 0 ? -v : v; }
