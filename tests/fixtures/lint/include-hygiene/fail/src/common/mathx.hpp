// Missing #pragma once: double inclusion would redefine mathx_abs.
inline int mathx_abs(int v) { return v < 0 ? -v : v; }
