// glap-lint: allow-file(include-hygiene): generated twin of a C header; the guard macro form is pinned by the generator
inline int mathx_abs(int v) { return v < 0 ? -v : v; }
