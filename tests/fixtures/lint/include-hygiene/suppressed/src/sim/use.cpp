// The IWYU-style violation is excused at the include line.
// glap-lint: allow(include-hygiene): kept for the side-effectful registration macro it expands elsewhere
#include "common/mathx.hpp"
int magnitude(int v) { return v < 0 ? -v : v; }
