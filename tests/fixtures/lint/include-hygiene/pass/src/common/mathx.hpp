// Self-contained header: pragma once plus a name the includer uses.
#pragma once
inline int mathx_abs(int v) { return v < 0 ? -v : v; }
