// The include earns its keep: mathx_abs is referenced right here.
#include "common/mathx.hpp"
int magnitude(int v) { return mathx_abs(v); }
