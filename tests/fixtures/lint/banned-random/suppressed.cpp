#include <cstdlib>

// glap-lint: allow(banned-random): fixture demonstrates the suppressed form; never linked into the simulator
int draw() { return std::rand(); }
