// Three banned sources: random_device (hardware entropy), mt19937
// (standard-library engine, not Rng), and C rand() (global hidden state).
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<int>(gen()) + std::rand();
}
