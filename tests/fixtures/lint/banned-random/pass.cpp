// All randomness flows through an injected generator (glap::Rng in the
// real tree) — reproducible from the seed, splittable per subsystem.
struct Rng {
  unsigned long long next();
};

unsigned pick(Rng& rng) { return static_cast<unsigned>(rng.next() % 7); }
