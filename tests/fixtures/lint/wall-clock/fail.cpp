// Wall-clock reads: both the chrono clock and the C time() call make the
// result depend on the host, not the seed.
#include <chrono>
#include <ctime>

double jitter() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<double>(t.count()) +
         static_cast<double>(time(nullptr));
}
