// Deterministic code derives every "time" from the round counter — a pure
// function of the seed and the schedule, identical on every host.
#include <cstdint>

std::uint64_t next_deadline(std::uint64_t round) { return round + 5; }
