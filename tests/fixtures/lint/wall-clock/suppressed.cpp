// Both allow forms: a comment directly above the violating line and a
// trailing same-line comment.
#include <chrono>

double elapsed() {
  // glap-lint: allow(wall-clock): bench scaffolding reports elapsed time; it never feeds simulation state
  const auto start = std::chrono::steady_clock::now();
  const auto stop = std::chrono::steady_clock::now();  // glap-lint: allow(wall-clock): same-line exemption for the stop stamp
  return std::chrono::duration<double>(stop - start).count();
}
