// Hand-written trace lines must use "ev" names from trace::EventKind.
#include <string>

std::string line() {
  return "{\"ev\":\"migration\",\"round\":3}";
}

std::string other() {
  return "{\"ev\":\"power\"}";
}
