#include <string>

std::string line() {
  // glap-lint: allow(trace-kind): deliberately malformed event used by a reader rejection test
  return "{\"ev\":\"bogus\",\"round\":3}";
}
