// "migrate" is not a trace::EventKind name (the enum says "migration");
// glap-trace would silently drop this event.
#include <string>

std::string line() {
  return "{\"ev\":\"migrate\",\"round\":3}";
}
