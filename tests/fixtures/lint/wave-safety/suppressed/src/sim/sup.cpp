// The same hazards as the fail fixture, each excused with a justified
// allow — the fixture pins that wave-safety findings honour the normal
// suppression machinery.
struct Rng {
  unsigned next() { return 1u; }
};

class SupProtocol : public Protocol {
 public:
  void select_peers() {
    // glap-lint: allow(wave-safety): cursor_ is rebuilt from scratch before execute() reads it
    cursor_ = cursor_ + 1;
    (void)rng_.next();  // glap-lint: allow(wave-safety): this draw is replayed identically by execute()
  }

 private:
  int cursor_ = 0;
  Rng rng_;
};
