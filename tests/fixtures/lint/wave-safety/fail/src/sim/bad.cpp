// Every purity violation at once: a real member write, an in-place
// container mutation, a member-RNG draw, and a call to a non-const
// method of the same class.
struct Rng {
  unsigned next() { return 1u; }
};

class BadProtocol : public Protocol {
 public:
  void select_peers() {
    cursor_ = cursor_ + 1;
    (void)rng_.next();
    advance();
  }
  bool can_quiesce() {
    peers_.push_back(1);
    return true;
  }

 private:
  void advance() { cursor_ = 0; }
  int cursor_ = 0;
  Rng rng_;
  std::vector<int> peers_;
};
