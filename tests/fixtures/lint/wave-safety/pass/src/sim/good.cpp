// A pure select_peers: per-call state stays in *scratch*/*select* staging
// and dry-run draws use a local copy of the RNG, never the member.
struct Rng {
  unsigned next() { return 1u; }
};

class GoodProtocol : public Protocol {
 public:
  void select_peers() {
    scratch_select_ = 0;
    Rng sim_rng = rng_;
    scratch_select_ = static_cast<int>(sim_rng.next());
    (void)snapshot();
  }
  bool can_quiesce() { return scratch_select_ == 0; }

 private:
  int snapshot() const { return scratch_select_; }
  int scratch_select_ = 0;
  Rng rng_;
};
