// End-to-end trace toolchain: the JSONL trace of a 150-PM run of every
// algorithm parses cleanly, satisfies every invariant `glap-trace check`
// enforces, and stays consistent with the run's own aggregates; a
// hand-corrupted trace is flagged with a pointed diagnostic.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/trace_check.hpp"
#include "common/trace_reader.hpp"
#include "harness/runner.hpp"

namespace glap::harness {
namespace {

ExperimentConfig tools_config(Algorithm algorithm) {
  ExperimentConfig config;
  config.algorithm = algorithm;
  config.pm_count = 150;
  config.vm_ratio = 2;
  config.warmup_rounds = 80;
  config.rounds = 60;
  config.seed = 42;
  config.fit_glap_phases_to_warmup();
  return config;
}

struct TracedRun {
  RunResult result;
  std::vector<trace::TraceEvent> events;
};

TracedRun run_traced(ExperimentConfig config) {
  std::ostringstream sink;
  config.observability.trace_sink = &sink;
  TracedRun run;
  run.result = run_experiment(config);

  std::istringstream in(sink.str());
  trace::TraceReader reader(in);
  trace::TraceEvent event;
  std::string error;
  while (true) {
    const auto status = reader.next(&event, &error);
    EXPECT_NE(status, trace::TraceReader::Status::kError)
        << "line " << reader.line_number() << ": " << error;
    if (status != trace::TraceReader::Status::kEvent) break;
    run.events.push_back(event);
  }
  return run;
}

class TraceToolsTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(TraceToolsTest, TraceSatisfiesEveryInvariantAt150Pms) {
  const TracedRun run = run_traced(tools_config(GetParam()));
  ASSERT_FALSE(run.events.empty());

  trace::InvariantChecker checker;
  std::size_t line = 0;
  for (const auto& e : run.events) checker.add(e, ++line);
  checker.finish();
  for (const auto& v : checker.violations())
    ADD_FAILURE() << "line " << v.line << " [" << v.rule
                  << "]: " << v.message;
  EXPECT_EQ(checker.events_checked(), run.events.size());
}

TEST_P(TraceToolsTest, TraceAgreesWithTheRunsOwnAggregates) {
  const ExperimentConfig config = tools_config(GetParam());
  const TracedRun run = run_traced(config);

  trace::StatsCollector stats;
  trace::LineageBuilder lineage;
  for (const auto& e : run.events) {
    stats.add(e);
    lineage.add(e);
  }
  const auto& counts = stats.stats().counts;
  const auto count = [&](trace::EventKind k) {
    return counts[static_cast<std::size_t>(k)];
  };

  // Consolidation runs only in the evaluation window, so every migration
  // event must be accounted for in the run's total.
  EXPECT_EQ(count(trace::EventKind::kMigration),
            run.result.total_migrations);
  EXPECT_EQ(count(trace::EventKind::kRound),
            static_cast<std::uint64_t>(config.rounds));
  EXPECT_EQ(count(trace::EventKind::kFault), 0u);

  std::uint64_t hops = 0;
  for (const auto& [vm, chain] : lineage.vm_chains()) hops += chain.size();
  EXPECT_EQ(hops, run.result.total_migrations);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, TraceToolsTest,
                         ::testing::Values(Algorithm::kGlap, Algorithm::kGrmp,
                                           Algorithm::kEcoCloud,
                                           Algorithm::kPabfd),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(TraceTools, CorruptedTraceIsFlaggedWithAPointedDiagnostic) {
  TracedRun run = run_traced(tools_config(Algorithm::kPabfd));

  // Hand-corrupt the first migration: redirect it onto its source PM.
  bool corrupted = false;
  for (auto& e : run.events)
    if (e.kind == trace::EventKind::kMigration) {
      e.migration.to = e.migration.from;
      corrupted = true;
      break;
    }
  ASSERT_TRUE(corrupted) << "run produced no migrations to corrupt";

  trace::InvariantChecker checker;
  std::size_t line = 0;
  for (const auto& e : run.events) checker.add(e, ++line);
  checker.finish();

  ASSERT_FALSE(checker.violations().empty());
  const auto& v = checker.violations().front();
  EXPECT_EQ(v.rule, "migration-self");
  EXPECT_NE(v.message.find("onto itself"), std::string::npos) << v.message;
  EXPECT_GT(v.line, 0u);
}

}  // namespace
}  // namespace glap::harness
