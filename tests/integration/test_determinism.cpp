// Harness-level determinism: run_experiment with engine_threads > 1 must
// reproduce the serial reference run bit-for-bit — every per-round sample
// and every floating-point aggregate — for every algorithm in the suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hpp"

namespace glap::harness {
namespace {

ExperimentConfig small_config(Algorithm algorithm) {
  ExperimentConfig config;
  config.algorithm = algorithm;
  config.pm_count = 80;
  config.vm_ratio = 2;
  config.warmup_rounds = 60;
  config.rounds = 40;
  config.seed = 7;
  config.fit_glap_phases_to_warmup();
  // Profiler phase *counts* are part of the determinism contract
  // (DESIGN.md §10.4); wall-clock is not and is never compared.
  config.observability.profile = true;
  return config;
}

/// The deterministic half of the phase profile: (label, calls) pairs,
/// in report order. Select (wave-only, wall-clock-only) is excluded.
std::vector<std::pair<std::string, std::uint64_t>> deterministic_profile(
    const RunResult& result) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& phase : result.profile)
    if (phase.deterministic) out.emplace_back(phase.label, phase.calls);
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const char* what) {
  EXPECT_EQ(a.total_migrations, b.total_migrations) << what;
  EXPECT_EQ(a.migration_energy_j, b.migration_energy_j) << what;
  EXPECT_EQ(a.total_energy_j, b.total_energy_j) << what;
  EXPECT_EQ(a.slavo, b.slavo) << what;
  EXPECT_EQ(a.slalm, b.slalm) << what;
  EXPECT_EQ(a.slav, b.slav) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.final_active_pms, b.final_active_pms) << what;
  EXPECT_EQ(a.final_overloaded_pms, b.final_overloaded_pms) << what;
  EXPECT_EQ(a.final_bfd_bins, b.final_bfd_bins) << what;
  EXPECT_EQ(deterministic_profile(a), deterministic_profile(b)) << what;
  ASSERT_EQ(a.rounds.size(), b.rounds.size()) << what;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].active_pms, b.rounds[r].active_pms)
        << what << " round " << r;
    EXPECT_EQ(a.rounds[r].overloaded_pms, b.rounds[r].overloaded_pms)
        << what << " round " << r;
    EXPECT_EQ(a.rounds[r].migrations_cum, b.rounds[r].migrations_cum)
        << what << " round " << r;
    EXPECT_EQ(a.rounds[r].migrations_round, b.rounds[r].migrations_round)
        << what << " round " << r;
    EXPECT_EQ(a.rounds[r].migration_energy_j, b.rounds[r].migration_energy_j)
        << what << " round " << r;
  }
}

class DeterminismTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(DeterminismTest, ParallelEngineMatchesSerialBitForBit) {
  ExperimentConfig config = small_config(GetParam());
  const RunResult serial = run_experiment(config);

  config.engine_threads = 2;
  const RunResult par2 = run_experiment(config);
  expect_identical(serial, par2, "threads=2");

  config.engine_threads = 4;
  const RunResult par4 = run_experiment(config);
  expect_identical(serial, par4, "threads=4");
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DeterminismTest,
                         ::testing::Values(Algorithm::kGlap, Algorithm::kGrmp,
                                           Algorithm::kEcoCloud,
                                           Algorithm::kPabfd),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Determinism, ParallelRunIsReproducible) {
  ExperimentConfig config = small_config(Algorithm::kGlap);
  config.engine_threads = 4;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  expect_identical(a, b, "repeat");
}

}  // namespace
}  // namespace glap::harness
