// Harness-level determinism: run_experiment with engine_threads > 1 must
// reproduce the serial reference run bit-for-bit — every per-round sample
// and every floating-point aggregate — for every algorithm in the suite.
// The event-driven scheduler (DESIGN.md §12) is held to the same contract
// at every configuration, including quiescence, where the executed set
// shrinks but must shrink identically under both engines (profile call
// counts included).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/trace_format.hpp"
#include "harness/runner.hpp"

namespace glap::harness {
namespace {

ExperimentConfig small_config(Algorithm algorithm) {
  ExperimentConfig config;
  config.algorithm = algorithm;
  config.pm_count = 80;
  config.vm_ratio = 2;
  config.warmup_rounds = 60;
  config.rounds = 40;
  config.seed = 7;
  config.fit_glap_phases_to_warmup();
  // Profiler phase *counts* are part of the determinism contract
  // (DESIGN.md §10.4); wall-clock is not and is never compared.
  config.observability.profile = true;
  return config;
}

/// The deterministic half of the phase profile: (label, calls) pairs,
/// in report order. Select (wave-only, wall-clock-only) is excluded.
std::vector<std::pair<std::string, std::uint64_t>> deterministic_profile(
    const RunResult& result) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& phase : result.profile)
    if (phase.deterministic) out.emplace_back(phase.label, phase.calls);
  return out;
}

void expect_identical(const RunResult& a, const RunResult& b,
                      const char* what) {
  EXPECT_EQ(a.total_migrations, b.total_migrations) << what;
  EXPECT_EQ(a.migration_energy_j, b.migration_energy_j) << what;
  EXPECT_EQ(a.total_energy_j, b.total_energy_j) << what;
  EXPECT_EQ(a.slavo, b.slavo) << what;
  EXPECT_EQ(a.slalm, b.slalm) << what;
  EXPECT_EQ(a.slav, b.slav) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.final_active_pms, b.final_active_pms) << what;
  EXPECT_EQ(a.final_overloaded_pms, b.final_overloaded_pms) << what;
  EXPECT_EQ(a.final_bfd_bins, b.final_bfd_bins) << what;
  EXPECT_EQ(deterministic_profile(a), deterministic_profile(b)) << what;
  ASSERT_EQ(a.rounds.size(), b.rounds.size()) << what;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].active_pms, b.rounds[r].active_pms)
        << what << " round " << r;
    EXPECT_EQ(a.rounds[r].overloaded_pms, b.rounds[r].overloaded_pms)
        << what << " round " << r;
    EXPECT_EQ(a.rounds[r].migrations_cum, b.rounds[r].migrations_cum)
        << what << " round " << r;
    EXPECT_EQ(a.rounds[r].migrations_round, b.rounds[r].migrations_round)
        << what << " round " << r;
    EXPECT_EQ(a.rounds[r].migration_energy_j, b.rounds[r].migration_energy_j)
        << what << " round " << r;
    EXPECT_EQ(a.rounds[r].quiescent_pms, b.rounds[r].quiescent_pms)
        << what << " round " << r;
  }
}

class DeterminismTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(DeterminismTest, ParallelEngineMatchesSerialBitForBit) {
  ExperimentConfig config = small_config(GetParam());
  const RunResult serial = run_experiment(config);

  config.engine_threads = 2;
  const RunResult par2 = run_experiment(config);
  expect_identical(serial, par2, "threads=2");

  config.engine_threads = 4;
  const RunResult par4 = run_experiment(config);
  expect_identical(serial, par4, "threads=4");
}

TEST_P(DeterminismTest, EventEngineMatchesSerialBitForBit) {
  ExperimentConfig config = small_config(GetParam());
  const RunResult serial = run_experiment(config);

  config.event_engine = true;
  const RunResult event = run_experiment(config);
  expect_identical(serial, event, "event");
}

TEST_P(DeterminismTest, EventEngineMatchesSerialUnderQuiescence) {
  ExperimentConfig config = small_config(GetParam());
  config.glap.quiescence.enabled = true;
  config.glap.quiescence.idle_rounds = 4;
  config.glap.quiescence.demand_epsilon = 0.10;
  const RunResult serial = run_experiment(config);

  config.event_engine = true;
  const RunResult event = run_experiment(config);
  expect_identical(serial, event, "event+quiescence");
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DeterminismTest,
                         ::testing::Values(Algorithm::kGlap, Algorithm::kGrmp,
                                           Algorithm::kEcoCloud,
                                           Algorithm::kPabfd),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// Satellite contract for the quiescence engine: a run long enough for PMs
// to converge and park, with churn and demand drift supplying gossip /
// demand / migration re-activations, must stay field-identical between
// the serial and event engines AND must actually exercise the park/wake
// cycle (otherwise this test would pass vacuously).
TEST(Determinism, QuiescentPmsAreReactivatedIdenticallyUnderBothEngines) {
  ExperimentConfig config = small_config(Algorithm::kGlap);
  config.rounds = 80;
  config.glap.quiescence.enabled = true;
  config.glap.quiescence.idle_rounds = 3;
  config.glap.quiescence.demand_epsilon = 0.10;
  config.churn.enabled = true;
  config.churn.departure_prob = 0.003;
  config.churn.arrival_prob = 0.05;
  const RunResult serial = run_experiment(config);

  config.event_engine = true;
  const RunResult event = run_experiment(config);
  expect_identical(serial, event, "event+quiescence+churn");

  std::uint32_t peak = 0;
  bool woke = false;
  for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
    peak = std::max(peak, serial.rounds[r].quiescent_pms);
    if (r > 0 &&
        serial.rounds[r].quiescent_pms < serial.rounds[r - 1].quiescent_pms)
      woke = true;
  }
  EXPECT_GT(peak, 0u) << "no PM ever parked — the scenario is too noisy";
  EXPECT_TRUE(woke) << "no parked PM was ever re-activated";
}

TEST(Determinism, ParallelRunIsReproducible) {
  ExperimentConfig config = small_config(Algorithm::kGlap);
  config.engine_threads = 4;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  expect_identical(a, b, "repeat");
}

// ---- Network model (DESIGN.md §13.3) ------------------------------------
// Message ids — and with them every loss decision and queueing outcome —
// are assigned in executed interaction order, which the serial and event
// engines share. The contract extends expect_identical with the
// network-model totals.

void expect_identical_net(const RunResult& a, const RunResult& b,
                          const char* what) {
  expect_identical(a, b, what);
  EXPECT_EQ(a.net_sends, b.net_sends) << what;
  EXPECT_EQ(a.net_delivered, b.net_delivered) << what;
  EXPECT_EQ(a.net_delayed, b.net_delayed) << what;
  EXPECT_EQ(a.net_dropped_loss, b.net_dropped_loss) << what;
  EXPECT_EQ(a.net_dropped_congestion, b.net_dropped_congestion) << what;
}

class NetworkDeterminismTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(NetworkDeterminismTest, EventEngineMatchesSerialWithNetworkAndLoss) {
  ExperimentConfig config = small_config(GetParam());
  config.network.enabled = true;
  config.network.loss_rate = 0.01;
  const RunResult serial = run_experiment(config);
  EXPECT_GT(serial.net_sends, 0u) << "network model saw no traffic";

  config.event_engine = true;
  const RunResult event = run_experiment(config);
  expect_identical_net(serial, event, "event+network");
}

INSTANTIATE_TEST_SUITE_P(Algorithms, NetworkDeterminismTest,
                         ::testing::Values(Algorithm::kGlap, Algorithm::kGrmp,
                                           Algorithm::kEcoCloud),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Determinism, NetworkRunIsReproducible) {
  ExperimentConfig config = small_config(Algorithm::kGlap);
  config.network.enabled = true;
  config.network.loss_rate = 0.01;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  expect_identical_net(a, b, "repeat+network");
  EXPECT_GT(a.net_dropped_loss, 0u) << "1% loss never fired";
}

TEST(Determinism, NetworkModelRejectsWaveParallelEngine) {
  ExperimentConfig config = small_config(Algorithm::kGlap);
  config.network.enabled = true;
  config.engine_threads = 2;
  EXPECT_THROW(run_experiment(config), precondition_error);
}

TEST(Determinism, EventEngineMatchesSerialWithNetworkAndQuiescence) {
  // Quiescence + network exercises the deferred-exchange machinery: a
  // delayed reply must block the initiator's park vote and the kNetwork
  // wake must fire identically under both engines. Loss alone cannot
  // defer, so force queueing delays with a starved uplink.
  ExperimentConfig config = small_config(Algorithm::kGlap);
  config.rounds = 60;
  config.network.enabled = true;
  config.network.loss_rate = 0.005;
  config.glap.quiescence.enabled = true;
  config.glap.quiescence.idle_rounds = 4;
  config.glap.quiescence.demand_epsilon = 0.10;
  const RunResult serial = run_experiment(config);

  config.event_engine = true;
  const RunResult event = run_experiment(config);
  expect_identical_net(serial, event, "event+network+quiescence");
}

// ---- trace-byte determinism (DESIGN.md §10.6) ---------------------------
// The GTB binary trace is written through the same ordered-commit path as
// JSONL, so its bytes — not just the decoded events — are part of the
// determinism contract: serial, wave-parallel, and event engines must
// produce identical files, with or without sampling.

std::string captured_trace(ExperimentConfig config) {
  std::ostringstream sink;
  config.observability.trace_sink = &sink;
  config.observability.trace_format = trace::Format::kGtb;
  run_experiment(config);
  return sink.str();
}

TEST(Determinism, GtbTraceBytesIdenticalAcrossEngines) {
  const ExperimentConfig config = small_config(Algorithm::kGlap);
  const std::string serial = captured_trace(config);
  ASSERT_GT(serial.size(), trace::kGtbHeaderBytes);

  ExperimentConfig wave = config;
  wave.engine_threads = 2;
  EXPECT_EQ(serial, captured_trace(wave)) << "threads=2";
  wave.engine_threads = 4;
  EXPECT_EQ(serial, captured_trace(wave)) << "threads=4";

  ExperimentConfig event = config;
  event.event_engine = true;
  EXPECT_EQ(serial, captured_trace(event)) << "event";
}

TEST(Determinism, SampledGtbTraceBytesIdenticalAcrossEngines) {
  // Sampling keeps a pure-hash subset, so the surviving byte stream must
  // also be engine-independent — and a strict subset of the full trace.
  ExperimentConfig config = small_config(Algorithm::kGlap);
  config.observability.trace_sample_shuffle = 0.25;
  const std::string serial = captured_trace(config);

  ExperimentConfig wave = config;
  wave.engine_threads = 4;
  EXPECT_EQ(serial, captured_trace(wave)) << "threads=4+sampling";

  ExperimentConfig event = config;
  event.event_engine = true;
  EXPECT_EQ(serial, captured_trace(event)) << "event+sampling";

  ExperimentConfig full = config;
  full.observability.trace_sample_shuffle = 1.0;
  EXPECT_LT(serial.size(), captured_trace(full).size())
      << "0.25 shuffle keep did not shrink the trace";
}

}  // namespace
}  // namespace glap::harness
