// Cross-module integration tests: full experiment runs checked against
// system-level invariants, for every algorithm and several sweep cells.
#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace glap::harness {
namespace {

struct Cell {
  Algorithm algorithm;
  std::size_t pm_count;
  std::size_t ratio;
};

class EndToEndTest : public ::testing::TestWithParam<Cell> {};

ExperimentConfig config_for(const Cell& cell) {
  ExperimentConfig config;
  config.algorithm = cell.algorithm;
  config.pm_count = cell.pm_count;
  config.vm_ratio = cell.ratio;
  config.rounds = 60;
  config.warmup_rounds = 40;
  config.glap.learning_rounds = 20;
  config.glap.aggregation_rounds = 20;
  config.glap.consolidation_start_round = 40;
  config.seed = 2024;
  return config;
}

TEST_P(EndToEndTest, SystemInvariantsHold) {
  const Cell cell = GetParam();
  const RunResult result = run_experiment(config_for(cell));

  ASSERT_EQ(result.rounds.size(), 60u);
  for (const auto& s : result.rounds) {
    // Active PMs never exceed the fleet; overloaded never exceed active.
    EXPECT_LE(s.active_pms, cell.pm_count);
    EXPECT_GE(s.active_pms, 1u);
    EXPECT_LE(s.overloaded_pms, s.active_pms);
  }

  // SLA metrics are well-formed.
  EXPECT_GE(result.slavo, 0.0);
  EXPECT_LE(result.slavo, 1.0);
  EXPECT_GE(result.slalm, 0.0);
  EXPECT_NEAR(result.slav, result.slavo * result.slalm, 1e-12);

  // Energy accounting is consistent: active PMs for 60 rounds of 120 s.
  EXPECT_GT(result.total_energy_j, 0.0);
  const double max_energy =
      static_cast<double>(cell.pm_count) * 135.0 * 60.0 * 120.0;
  EXPECT_LE(result.total_energy_j, max_energy);
  EXPECT_GE(result.migration_energy_j, 0.0);

  // Consolidators must actually consolidate on these underloaded fleets.
  if (cell.algorithm != Algorithm::kNone)
    EXPECT_LT(result.final_active_pms, cell.pm_count);

  // The BFD oracle can never need more PMs than exist.
  EXPECT_LE(result.final_bfd_bins, cell.pm_count);
  EXPECT_GE(result.final_bfd_bins, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Cells, EndToEndTest,
    ::testing::Values(Cell{Algorithm::kGlap, 60, 2},
                      Cell{Algorithm::kGlap, 60, 4},
                      Cell{Algorithm::kGrmp, 60, 3},
                      Cell{Algorithm::kEcoCloud, 60, 3},
                      Cell{Algorithm::kPabfd, 60, 3},
                      Cell{Algorithm::kNone, 40, 2}),
    [](const auto& info) {
      return std::string(to_string(info.param.algorithm)) + "_" +
             std::to_string(info.param.pm_count) + "x" +
             std::to_string(info.param.ratio);
    });

TEST(EndToEnd, IdenticalWorkloadAcrossAlgorithms) {
  // The None run exposes the raw demand playback; any algorithm's run on
  // the same seed must see identical BFD oracle packing at the end (the
  // oracle depends only on demands, which must be algorithm-independent).
  Cell base{Algorithm::kNone, 50, 3};
  const RunResult none = run_experiment(config_for(base));
  for (Algorithm algo : {Algorithm::kGlap, Algorithm::kGrmp,
                         Algorithm::kEcoCloud, Algorithm::kPabfd}) {
    Cell cell{algo, 50, 3};
    const RunResult result = run_experiment(config_for(cell));
    EXPECT_EQ(result.final_bfd_bins, none.final_bfd_bins)
        << to_string(algo) << " saw a different demand stream";
  }
}

TEST(EndToEnd, GlapBeatsGrmpOnOverloads) {
  // The paper's headline claim, checked at small scale: GLAP produces
  // fewer overloaded PMs than the aggressive threshold protocol.
  Cell glap_cell{Algorithm::kGlap, 80, 3};
  Cell grmp_cell{Algorithm::kGrmp, 80, 3};
  ExperimentConfig glap_config = config_for(glap_cell);
  ExperimentConfig grmp_config = config_for(grmp_cell);
  glap_config.rounds = grmp_config.rounds = 120;
  const RunResult glap = run_experiment(glap_config);
  const RunResult grmp = run_experiment(grmp_config);
  EXPECT_LT(glap.mean_overloaded(), grmp.mean_overloaded());
}

TEST(EndToEnd, GlapConvergenceReachesUnity) {
  Cell cell{Algorithm::kGlap, 60, 3};
  ExperimentConfig config = config_for(cell);
  config.track_convergence = true;
  config.convergence_pairs = 32;
  const RunResult result = run_experiment(config);
  ASSERT_EQ(result.convergence.size(), config.warmup_rounds);
  EXPECT_GT(result.convergence.back(), 0.999);
  // And the learning-only prefix is less converged than the end state.
  EXPECT_LT(result.convergence[config.glap.learning_rounds - 1],
            result.convergence.back());
}

TEST(EndToEnd, MessageAccountingIsPopulatedForGossipProtocols) {
  for (Algorithm algo :
       {Algorithm::kGlap, Algorithm::kGrmp, Algorithm::kEcoCloud}) {
    Cell cell{algo, 40, 2};
    const RunResult result = run_experiment(config_for(cell));
    EXPECT_GT(result.messages, 0u) << to_string(algo);
    EXPECT_GT(result.bytes, 0u) << to_string(algo);
  }
}

// ---- Convergence under network adversity (DESIGN.md §13) ----------------

TEST(EndToEnd, HealthyNetworkModelMatchesIdealRun) {
  // At defaults (no loss, 1 GbE, gossip-sized payloads) every exchange
  // completes within its round, so enabling the model must not change a
  // single consolidation decision — only the net_* accounting appears.
  // Migration contention is the one modeled side effect that can move a
  // metric (it stretches τ, and with it SLALM), so pin strict identity
  // with it off first, then check contention only ever lengthens τ.
  Cell cell{Algorithm::kGlap, 80, 3};
  ExperimentConfig ideal = config_for(cell);
  ExperimentConfig modeled = config_for(cell);
  modeled.network.enabled = true;
  modeled.network.migration_contention = false;
  const RunResult a = run_experiment(ideal);
  const RunResult b = run_experiment(modeled);
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_EQ(a.final_active_pms, b.final_active_pms);
  EXPECT_EQ(a.slav, b.slav);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(b.net_sends, b.net_delivered);
  EXPECT_GT(b.net_sends, 0u);
  EXPECT_EQ(b.net_dropped_loss + b.net_dropped_congestion, 0u);

  ExperimentConfig contended = modeled;
  contended.network.migration_contention = true;
  const RunResult c = run_experiment(contended);
  EXPECT_EQ(a.total_migrations, c.total_migrations);
  EXPECT_EQ(a.final_active_pms, c.final_active_pms);
  EXPECT_GE(c.slalm, a.slalm) << "queueing can only lengthen migrations";
}

TEST(EndToEnd, GlapStillConsolidatesAtOnePercentLoss) {
  // Loss-tolerance regression: gossip is redundant by construction, so
  // GLAP must keep consolidating (and keep overloads bounded) when every
  // exchange leg independently drops at 1%.
  Cell cell{Algorithm::kGlap, 80, 3};
  ExperimentConfig ideal = config_for(cell);
  ideal.rounds = 120;
  ExperimentConfig lossy = ideal;
  lossy.network.enabled = true;
  lossy.network.loss_rate = 0.01;
  const RunResult clean = run_experiment(ideal);
  const RunResult noisy = run_experiment(lossy);

  EXPECT_GT(noisy.net_dropped_loss, 0u) << "loss never fired";
  // Still consolidates: the fleet shrinks from the initial 80 PMs...
  EXPECT_LT(noisy.final_active_pms, cell.pm_count);
  // ...to within 15% of the loss-free active-PM footprint,
  EXPECT_LE(noisy.mean_active(), clean.mean_active() * 1.15);
  // and overload suppression does not collapse either.
  EXPECT_LE(noisy.mean_overloaded(),
            clean.mean_overloaded() * 1.5 + 1.0);
}

}  // namespace
}  // namespace glap::harness
