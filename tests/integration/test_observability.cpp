// Observability integration: the JSONL trace of a tiny 8-PM GLAP run
// matches a committed golden file byte-for-byte, and metric/trace output
// is bit-identical between the serial and wave-parallel engines.
//
// Regenerate the golden file after an intentional trace-schema change:
//
//   GLAP_UPDATE_GOLDEN=1 ./build/tests/test_integration \
//       --gtest_filter='Observability.TraceMatchesGoldenFile'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "common/metrics.hpp"
#include "common/trace_check.hpp"
#include "common/trace_format.hpp"
#include "harness/runner.hpp"
#include "support/golden.hpp"

namespace glap::harness {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.algorithm = Algorithm::kGlap;
  config.pm_count = 8;
  config.vm_ratio = 2;
  config.warmup_rounds = 20;
  config.rounds = 8;
  config.seed = 5;
  config.fit_glap_phases_to_warmup();
  return config;
}

struct Captured {
  std::string trace;
  std::string metrics_json;
};

Captured run_captured(ExperimentConfig config) {
  std::ostringstream sink;
  config.observability.metrics = true;
  config.observability.trace_sink = &sink;
  const RunResult result = run_experiment(config);
  Captured captured;
  captured.trace = sink.str();
  std::ostringstream metrics_out;
  result.metrics->write_json(metrics_out);
  captured.metrics_json = metrics_out.str();
  return captured;
}

TEST(Observability, TraceMatchesGoldenFile) {
  const std::string path =
      std::string(GLAP_TESTS_DIR) + "/integration/golden/trace_8pm.jsonl";
  const Captured captured = run_captured(tiny_config());
  ASSERT_FALSE(captured.trace.empty());
  testing_support::expect_matches_golden(
      path, captured.trace,
      "trace schema or event stream changed; if intentional, regenerate "
      "with GLAP_UPDATE_GOLDEN=1");
}

TEST(Observability, GtbTraceMatchesGoldenFile) {
  const std::string path =
      std::string(GLAP_TESTS_DIR) + "/integration/golden/trace_8pm.gtb";
  ExperimentConfig config = tiny_config();
  config.observability.trace_format = trace::Format::kGtb;
  const Captured captured = run_captured(config);
  ASSERT_GT(captured.trace.size(), trace::kGtbHeaderBytes);
  testing_support::expect_matches_golden(
      path, captured.trace,
      "GTB wire format or event stream changed; if intentional, regenerate "
      "with GLAP_UPDATE_GOLDEN=1 (and check the JSONL golden too)");
}

TEST(Observability, GtbAndJsonlTracesDecodeIdentically) {
  // The two goldens pin the same run; here the live streams are checked
  // against each other: every analyzer outcome (check violations, stats)
  // must be byte-identical whichever encoding carried the events.
  const Captured jsonl = run_captured(tiny_config());
  ExperimentConfig config = tiny_config();
  config.observability.trace_format = trace::Format::kGtb;
  const Captured gtb = run_captured(config);
  ASSERT_LT(gtb.trace.size(), jsonl.trace.size());

  const auto analyze = [](const std::string& bytes) {
    std::istringstream in(bytes);
    trace::TraceReader reader(in);
    trace::InvariantChecker checker;
    trace::StatsCollector stats;
    std::string rendered;
    trace::TraceEvent e;
    std::string error;
    while (true) {
      const auto status = reader.next(&e, &error);
      EXPECT_NE(status, trace::TraceReader::Status::kError)
          << "record " << reader.line_number() << ": " << error;
      if (status != trace::TraceReader::Status::kEvent) break;
      checker.add(e, reader.line_number());
      stats.add(e);
      trace::render_jsonl(e, &rendered);
    }
    checker.finish();
    EXPECT_TRUE(checker.violations().empty());
    struct Outcome {
      std::string rendered;
      std::uint64_t events = 0;
      std::uint64_t migrations = 0;
    } outcome;
    outcome.rendered = std::move(rendered);
    outcome.events = checker.events_checked();
    outcome.migrations = stats.stats().counts[static_cast<std::size_t>(
        trace::EventKind::kMigration)];
    return outcome;
  };

  const auto a = analyze(jsonl.trace);
  const auto b = analyze(gtb.trace);
  EXPECT_EQ(a.rendered, b.rendered);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.migrations, b.migrations);
  // The JSONL stream re-rendered from its own parse is the stream itself,
  // so transitively the GTB trace converts to the exact JSONL bytes.
  EXPECT_EQ(a.rendered, jsonl.trace);
}

TEST(Observability, TraceCarriesTheExpectedEventMix) {
  const Captured captured = run_captured(tiny_config());
  const ExperimentConfig config = tiny_config();
  std::size_t round_lines = 0;
  std::istringstream lines(captured.trace);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"ev\":\"round\"", 0) == 0) ++round_lines;
  }
  // One summary line per evaluation round.
  EXPECT_EQ(round_lines, config.rounds);
  // The GLAP warmup emits gossip shuffles.
  EXPECT_NE(captured.trace.find("\"ev\":\"shuffle\""), std::string::npos);
}

TEST(Observability, MetricsAndTraceBitIdenticalSerialVsParallel) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kGlap;
  config.pm_count = 32;
  config.vm_ratio = 3;
  config.warmup_rounds = 40;
  config.rounds = 15;
  config.seed = 9;
  config.fit_glap_phases_to_warmup();
  // Profiler counts are part of the snapshot identity contract: with
  // profile on, the registry carries profile.<phase>.calls counters that
  // must also be bit-identical across execution modes.
  config.observability.profile = true;

  const Captured serial = run_captured(config);
  config.engine_threads = 4;
  const Captured parallel = run_captured(config);

  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.metrics_json, parallel.metrics_json);
  EXPECT_NE(serial.metrics_json.find("profile."), std::string::npos);
}

TEST(Observability, MetricsSinksWriteFiles) {
  ExperimentConfig config = tiny_config();
  const std::string dir = ::testing::TempDir();
  config.observability.metrics_json_path = dir + "glap_metrics_test.json";
  config.observability.series_csv_path = dir + "glap_series_test.csv";
  const RunResult result = run_experiment(config);
  ASSERT_NE(result.metrics, nullptr);

  std::ifstream json_in(config.observability.metrics_json_path);
  ASSERT_TRUE(json_in.is_open());
  std::stringstream json_buf;
  json_buf << json_in.rdbuf();
  EXPECT_NE(json_buf.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(json_buf.str().find("\"dc.migrations\""), std::string::npos);

  std::ifstream csv_in(config.observability.series_csv_path);
  ASSERT_TRUE(csv_in.is_open());
  std::string header;
  std::getline(csv_in, header);
  EXPECT_EQ(header,
            "round,active_pms,migrations_round,net_bytes,net_messages,"
            "overloaded_pms");
}

TEST(Observability, DisabledRunPublishesNoRegistry) {
  const RunResult result = run_experiment(tiny_config());
  EXPECT_EQ(result.metrics, nullptr);
}

TEST(Observability, FlightDumpIsAParseableTraceOfTheLastRounds) {
  // The recorder runs even with file tracing off; flight_dump_path forces
  // an end-of-run dump so the ring's contents can be inspected without a
  // crash. The dump must be a valid GTB trace of the last N rounds.
  ExperimentConfig config = tiny_config();
  config.observability.flight_recorder_rounds = 4;
  config.observability.flight_dump_path =
      ::testing::TempDir() + "glap_flight_obs.gtb";
  run_experiment(config);

  std::ifstream in(config.observability.flight_dump_path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  trace::TraceReader reader(in);
  trace::TraceEvent e;
  std::string error;
  std::uint64_t first_round = 0, last_round = 0, summaries = 0;
  bool any = false;
  while (reader.next(&e, &error) == trace::TraceReader::Status::kEvent) {
    if (!any) first_round = e.round;
    any = true;
    last_round = e.round;
    if (e.kind == trace::EventKind::kRound) ++summaries;
  }
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_TRUE(any) << "flight dump holds no events";
  EXPECT_TRUE(reader.binary());
  // Four retained rounds ending at the final evaluation round.
  EXPECT_EQ(summaries, 4u);
  EXPECT_GE(first_round, config.warmup_rounds);
  EXPECT_EQ(last_round, config.warmup_rounds + config.rounds - 1);
  std::remove(config.observability.flight_dump_path.c_str());
}

}  // namespace
}  // namespace glap::harness
