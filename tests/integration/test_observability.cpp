// Observability integration: the JSONL trace of a tiny 8-PM GLAP run
// matches a committed golden file byte-for-byte, and metric/trace output
// is bit-identical between the serial and wave-parallel engines.
//
// Regenerate the golden file after an intentional trace-schema change:
//
//   GLAP_UPDATE_GOLDEN=1 ./build/tests/test_integration \
//       --gtest_filter='Observability.TraceMatchesGoldenFile'
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/metrics.hpp"
#include "harness/runner.hpp"
#include "support/golden.hpp"

namespace glap::harness {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.algorithm = Algorithm::kGlap;
  config.pm_count = 8;
  config.vm_ratio = 2;
  config.warmup_rounds = 20;
  config.rounds = 8;
  config.seed = 5;
  config.fit_glap_phases_to_warmup();
  return config;
}

struct Captured {
  std::string trace;
  std::string metrics_json;
};

Captured run_captured(ExperimentConfig config) {
  std::ostringstream sink;
  config.observability.metrics = true;
  config.observability.trace_sink = &sink;
  const RunResult result = run_experiment(config);
  Captured captured;
  captured.trace = sink.str();
  std::ostringstream metrics_out;
  result.metrics->write_json(metrics_out);
  captured.metrics_json = metrics_out.str();
  return captured;
}

TEST(Observability, TraceMatchesGoldenFile) {
  const std::string path =
      std::string(GLAP_TESTS_DIR) + "/integration/golden/trace_8pm.jsonl";
  const Captured captured = run_captured(tiny_config());
  ASSERT_FALSE(captured.trace.empty());
  testing_support::expect_matches_golden(
      path, captured.trace,
      "trace schema or event stream changed; if intentional, regenerate "
      "with GLAP_UPDATE_GOLDEN=1");
}

TEST(Observability, TraceCarriesTheExpectedEventMix) {
  const Captured captured = run_captured(tiny_config());
  const ExperimentConfig config = tiny_config();
  std::size_t round_lines = 0;
  std::istringstream lines(captured.trace);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"ev\":\"round\"", 0) == 0) ++round_lines;
  }
  // One summary line per evaluation round.
  EXPECT_EQ(round_lines, config.rounds);
  // The GLAP warmup emits gossip shuffles.
  EXPECT_NE(captured.trace.find("\"ev\":\"shuffle\""), std::string::npos);
}

TEST(Observability, MetricsAndTraceBitIdenticalSerialVsParallel) {
  ExperimentConfig config;
  config.algorithm = Algorithm::kGlap;
  config.pm_count = 32;
  config.vm_ratio = 3;
  config.warmup_rounds = 40;
  config.rounds = 15;
  config.seed = 9;
  config.fit_glap_phases_to_warmup();
  // Profiler counts are part of the snapshot identity contract: with
  // profile on, the registry carries profile.<phase>.calls counters that
  // must also be bit-identical across execution modes.
  config.observability.profile = true;

  const Captured serial = run_captured(config);
  config.engine_threads = 4;
  const Captured parallel = run_captured(config);

  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.metrics_json, parallel.metrics_json);
  EXPECT_NE(serial.metrics_json.find("profile."), std::string::npos);
}

TEST(Observability, MetricsSinksWriteFiles) {
  ExperimentConfig config = tiny_config();
  const std::string dir = ::testing::TempDir();
  config.observability.metrics_json_path = dir + "glap_metrics_test.json";
  config.observability.series_csv_path = dir + "glap_series_test.csv";
  const RunResult result = run_experiment(config);
  ASSERT_NE(result.metrics, nullptr);

  std::ifstream json_in(config.observability.metrics_json_path);
  ASSERT_TRUE(json_in.is_open());
  std::stringstream json_buf;
  json_buf << json_in.rdbuf();
  EXPECT_NE(json_buf.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(json_buf.str().find("\"dc.migrations\""), std::string::npos);

  std::ifstream csv_in(config.observability.series_csv_path);
  ASSERT_TRUE(csv_in.is_open());
  std::string header;
  std::getline(csv_in, header);
  EXPECT_EQ(header,
            "round,active_pms,migrations_round,net_bytes,net_messages,"
            "overloaded_pms");
}

TEST(Observability, DisabledRunPublishesNoRegistry) {
  const RunResult result = run_experiment(tiny_config());
  EXPECT_EQ(result.metrics, nullptr);
}

}  // namespace
}  // namespace glap::harness
