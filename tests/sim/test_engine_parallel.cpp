// Determinism tests for the wave-parallel engine: the parallel mode must
// be bit-identical to the serial reference engine for ANY thread count,
// because waves retire interactions in exactly the serial hash-rank order.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace glap::sim {
namespace {

/// Order-sensitive pairwise interaction: each round a node averages its
/// value with a deterministic partner. Averaging does not commute across
/// interactions, so any deviation from the serial execution order changes
/// the final values — exactly what these tests need to detect.
class AveragingProtocol final : public Protocol {
 public:
  AveragingProtocol(NodeId self, std::vector<double>* values)
      : self_(self), values_(values) {}

  [[nodiscard]] NodeId partner(const Engine& engine) const {
    const std::size_t n = engine.node_count();
    const std::uint64_t h =
        hash_combine(hash_combine(hash_tag("avg-partner"),
                                  engine.current_round()),
                     self_);
    return static_cast<NodeId>((self_ + 1 + h % (n - 1)) % n);
  }

  void select_peers(Engine& engine, NodeId /*self*/, PeerSet& peers) override {
    peers.add(partner(engine));
  }

  void execute(Engine& engine, NodeId self, const PeerSet& /*peers*/) override {
    const NodeId p = partner(engine);
    const double mine = (*values_)[self];
    const double theirs = (*values_)[p];
    (*values_)[self] = 0.75 * mine + 0.25 * theirs;
    (*values_)[p] = 0.25 * mine + 0.75 * theirs;
    engine.network().count_message(self, p, 24);
  }

 private:
  NodeId self_;
  std::vector<double>* values_;
};

/// Global-footprint protocol on node 0: folds every node's value into an
/// order-sensitive running digest. The engine must run it alone in its
/// wave for the digest to match serial.
class GlobalDigestProtocol final : public Protocol {
 public:
  GlobalDigestProtocol(NodeId self, const std::vector<double>* values,
                       double* digest)
      : self_(self), values_(values), digest_(digest) {}

  void select_peers(Engine&, NodeId, PeerSet& peers) override {
    if (self_ == 0) peers.add_global();
  }

  void execute(Engine&, NodeId self, const PeerSet&) override {
    if (self != 0) return;
    for (double v : *values_) *digest_ = 0.9 * *digest_ + v;
  }

 private:
  NodeId self_;
  const std::vector<double>* values_;
  double* digest_;
};

struct World {
  std::vector<double> values;
  double digest = 0.0;
  std::unique_ptr<Engine> engine;
};

World run_world(std::size_t n, std::size_t threads, Round rounds,
                bool with_global) {
  World w;
  w.values.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    w.values[i] = static_cast<double>(i + 1);
  w.engine = std::make_unique<Engine>(n, 1234);
  if (threads > 0) w.engine->enable_parallel_execution(threads);

  std::vector<std::unique_ptr<Protocol>> avg;
  for (std::size_t i = 0; i < n; ++i)
    avg.push_back(std::make_unique<AveragingProtocol>(
        static_cast<NodeId>(i), &w.values));
  w.engine->add_protocol_slot(std::move(avg));

  if (with_global) {
    std::vector<std::unique_ptr<Protocol>> digest;
    for (std::size_t i = 0; i < n; ++i)
      digest.push_back(std::make_unique<GlobalDigestProtocol>(
          static_cast<NodeId>(i), &w.values, &w.digest));
    w.engine->add_protocol_slot(std::move(digest));
  }

  w.engine->run(rounds);
  return w;
}

TEST(EngineParallel, ThreadsOneBitIdenticalToSerial) {
  const World serial = run_world(64, 0, 25, false);
  const World par = run_world(64, 1, 25, false);
  EXPECT_EQ(serial.values, par.values);  // element-wise bit equality
  EXPECT_EQ(serial.engine->network().messages(),
            par.engine->network().messages());
  EXPECT_EQ(serial.engine->network().bytes(), par.engine->network().bytes());
}

TEST(EngineParallel, AnyThreadCountBitIdenticalToSerial) {
  const World serial = run_world(96, 0, 25, false);
  for (std::size_t threads : {2u, 4u, 7u}) {
    const World par = run_world(96, threads, 25, false);
    EXPECT_EQ(serial.values, par.values) << "threads=" << threads;
    EXPECT_EQ(serial.engine->network().messages(),
              par.engine->network().messages())
        << "threads=" << threads;
    EXPECT_EQ(serial.engine->network().bytes(), par.engine->network().bytes())
        << "threads=" << threads;
  }
}

TEST(EngineParallel, SameSeedSameThreadsIsReproducible) {
  const World a = run_world(64, 4, 20, false);
  const World b = run_world(64, 4, 20, false);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.engine->network().messages(), b.engine->network().messages());
}

TEST(EngineParallel, GlobalFootprintSerializesCorrectly) {
  const World serial = run_world(48, 0, 20, true);
  for (std::size_t threads : {2u, 4u}) {
    const World par = run_world(48, threads, 20, true);
    EXPECT_EQ(serial.values, par.values) << "threads=" << threads;
    EXPECT_EQ(serial.digest, par.digest) << "threads=" << threads;
  }
}

TEST(EngineParallel, SleepingNodesStillSkippedInParallel) {
  World w;
  const std::size_t n = 32;
  w.values.resize(n, 1.0);
  Engine engine(n, 9);
  engine.enable_parallel_execution(4);
  std::vector<std::unique_ptr<Protocol>> avg;
  for (std::size_t i = 0; i < n; ++i)
    avg.push_back(std::make_unique<AveragingProtocol>(
        static_cast<NodeId>(i), &w.values));
  engine.add_protocol_slot(std::move(avg));
  engine.set_status(5, NodeStatus::kSleeping);
  const std::uint64_t before = engine.network().messages();
  engine.step();
  // Every active node initiates exactly one interaction.
  EXPECT_EQ(engine.network().messages() - before, n - 1);
}

TEST(EngineParallel, RejectsZeroThreads) {
  Engine engine(4, 1);
  EXPECT_THROW(engine.enable_parallel_execution(0), precondition_error);
}

}  // namespace
}  // namespace glap::sim
