// Quiescence + event-scheduler semantics (DESIGN.md §12): unanimous
// can_quiesce votes park a node, any veto blocks parking, wake /
// schedule_wake / set_status re-activate, and the event engine's executed
// sequence is exactly the serial engine's at the same configuration —
// including mid-round wakes, which insert iff the woken rank has not
// passed. Protocol storage goes through add_protocol_pool, so these tests
// also cover the struct-of-arrays arena path.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace glap::sim {
namespace {

/// Logs every execute; votes to park once it has run `threshold` times.
/// poke() models an incoming state change that invalidates convergence.
class CountingProtocol final : public Protocol {
 public:
  CountingProtocol(std::vector<NodeId>* log, int threshold)
      : log_(log), threshold_(threshold) {}

  void select_peers(Engine&, NodeId, PeerSet&) override {}  // self only
  void execute(Engine&, NodeId self, const PeerSet&) override {
    log_->push_back(self);
    ++runs_;
  }
  bool can_quiesce(const Engine&, NodeId) const override {
    return runs_ >= threshold_;
  }

  void poke() { runs_ = 0; }
  [[nodiscard]] int runs() const { return runs_; }

 private:
  std::vector<NodeId>* log_;
  int threshold_;
  int runs_ = 0;
};

/// A protocol that never votes to park (the default Protocol vote).
class VetoProtocol final : public Protocol {
 public:
  void select_peers(Engine&, NodeId, PeerSet&) override {}
  void execute(Engine&, NodeId, const PeerSet&) override {}
};

Engine::ProtocolSlot install_counters(Engine& engine, std::vector<NodeId>* log,
                                      int threshold) {
  return engine.add_protocol_pool<CountingProtocol>(
      [&](NodeId) { return CountingProtocol(log, threshold); });
}

TEST(Quiescence, UnanimousVoteParksAfterThreshold) {
  Engine engine(4, 1);
  engine.enable_quiescence();
  std::vector<NodeId> log;
  install_counters(engine, &log, 2);

  engine.step();
  EXPECT_EQ(engine.quiescent_count(), 0u);  // runs=1 < threshold
  engine.step();
  EXPECT_EQ(engine.quiescent_count(), 4u);  // unanimous vote after round 2
  EXPECT_EQ(log.size(), 8u);

  engine.step();
  engine.step();
  EXPECT_EQ(log.size(), 8u) << "parked nodes must not execute";
  EXPECT_TRUE(engine.is_quiescent(0));
}

TEST(Quiescence, AnyVetoBlocksParking) {
  Engine engine(4, 1);
  engine.enable_quiescence();
  std::vector<NodeId> log;
  install_counters(engine, &log, 1);
  std::vector<std::unique_ptr<Protocol>> vetoes;
  for (int i = 0; i < 4; ++i) vetoes.push_back(std::make_unique<VetoProtocol>());
  engine.add_protocol_slot(std::move(vetoes));

  for (int i = 0; i < 3; ++i) engine.step();
  EXPECT_EQ(engine.quiescent_count(), 0u);
  EXPECT_EQ(log.size(), 12u) << "vetoed nodes keep executing every round";
}

TEST(Quiescence, WakeReactivatesAndReparksAfterOneRound) {
  Engine engine(4, 1);
  engine.enable_quiescence();
  std::vector<NodeId> log;
  const auto slot = install_counters(engine, &log, 1);
  engine.step();
  ASSERT_EQ(engine.quiescent_count(), 4u);

  // Model an incoming gossip exchange touching node 2's state.
  engine.protocol_at<CountingProtocol>(slot, 2).poke();
  engine.wake(2, WakeReason::kGossip);
  EXPECT_FALSE(engine.is_quiescent(2));
  EXPECT_EQ(engine.quiescent_count(), 3u);

  log.clear();
  engine.step();
  EXPECT_EQ(log, std::vector<NodeId>{2}) << "only the woken node runs";
  EXPECT_EQ(engine.quiescent_count(), 4u) << "it re-parks after executing";
}

TEST(Quiescence, WakeOnNonParkedNodeIsANoOp) {
  Engine engine(3, 1);
  engine.enable_quiescence();
  std::vector<NodeId> log;
  install_counters(engine, &log, 100);  // never parks
  engine.step();
  engine.wake(1, WakeReason::kGossip);
  engine.step();
  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(engine.quiescent_count(), 0u);
}

TEST(Quiescence, ScheduleWakeFiresAtTheRequestedRound) {
  Engine engine(2, 1);
  engine.enable_quiescence();
  std::vector<NodeId> log;
  install_counters(engine, &log, 1);
  engine.step();
  ASSERT_EQ(engine.quiescent_count(), 2u);

  const Round target = engine.current_round() + 2;
  engine.schedule_wake(0, target, WakeReason::kSchedule);
  log.clear();
  engine.step();  // current_round()     < target: still parked
  engine.step();  // current_round() + 1 < target: still parked
  EXPECT_TRUE(log.empty());
  engine.step();  // target round: node 0 runs, then re-parks
  EXPECT_EQ(log, std::vector<NodeId>{0});
  EXPECT_EQ(engine.quiescent_count(), 2u);
}

TEST(Quiescence, RecheckHeartbeatWakesParkedNodes) {
  Engine engine(3, 1);
  engine.enable_quiescence(/*recheck_rounds=*/2);
  std::vector<NodeId> log;
  install_counters(engine, &log, 1);
  engine.step();  // all run, all park, heartbeat scheduled +2
  ASSERT_EQ(engine.quiescent_count(), 3u);
  log.clear();
  engine.step();  // parked
  EXPECT_TRUE(log.empty());
  engine.step();  // heartbeat: every node re-checks (and re-parks)
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(engine.quiescent_count(), 3u);
}

TEST(Quiescence, WakeAllReactivatesEveryParkedNode) {
  Engine engine(5, 1);
  engine.enable_quiescence();
  std::vector<NodeId> log;
  install_counters(engine, &log, 1);
  engine.step();
  ASSERT_EQ(engine.quiescent_count(), 5u);
  engine.wake_all(WakeReason::kRelearn);
  EXPECT_EQ(engine.quiescent_count(), 0u);
  log.clear();
  engine.step();
  EXPECT_EQ(log.size(), 5u);
}

TEST(Quiescence, StatusTransitionUnparks) {
  Engine engine(3, 1);
  engine.enable_quiescence();
  std::vector<NodeId> log;
  install_counters(engine, &log, 1);
  engine.step();
  ASSERT_TRUE(engine.is_quiescent(1));
  engine.set_status(1, NodeStatus::kSleeping);
  EXPECT_FALSE(engine.is_quiescent(1)) << "lifecycle changes clear the park";
  // A sleeping node does not execute, parked or not.
  log.clear();
  engine.step();
  EXPECT_TRUE(log.empty());
}

/// Runs `rounds` rounds on a fresh engine with the given mode, injecting
/// the same wake (node, after-round) sequence, and returns the executed
/// node sequence.
std::vector<NodeId> executed_sequence(bool event, Round rounds,
                                      int threshold) {
  Engine engine(16, 99);
  if (event) engine.enable_event_scheduler();
  engine.enable_quiescence();
  std::vector<NodeId> log;
  const auto slot = install_counters(engine, &log, threshold);
  for (Round r = 0; r < rounds; ++r) {
    engine.step();
    // Deterministic wake pattern: after every second round, poke two nodes.
    if (r % 2 == 1) {
      for (NodeId n : {static_cast<NodeId>(r % 16),
                       static_cast<NodeId>((3 * r) % 16)}) {
        engine.protocol_at<CountingProtocol>(slot, n).poke();
        engine.wake(n, WakeReason::kGossip);
      }
    }
  }
  return log;
}

TEST(EventScheduler, ExecutedSequenceIsIdenticalToSerial) {
  const std::vector<NodeId> serial = executed_sequence(false, 12, 3);
  const std::vector<NodeId> event = executed_sequence(true, 12, 3);
  EXPECT_EQ(serial, event);
  EXPECT_FALSE(serial.empty());
}

TEST(EventScheduler, PlainRunMatchesSerialWithoutQuiescence) {
  std::vector<NodeId> serial_log, event_log;
  {
    Engine engine(32, 5);
    install_counters(engine, &serial_log, 1 << 20);
    for (int i = 0; i < 5; ++i) engine.step();
  }
  {
    Engine engine(32, 5);
    engine.enable_event_scheduler();
    install_counters(engine, &event_log, 1 << 20);
    for (int i = 0; i < 5; ++i) engine.step();
  }
  EXPECT_EQ(serial_log, event_log);
  EXPECT_EQ(serial_log.size(), 160u);
}

}  // namespace
}  // namespace glap::sim
