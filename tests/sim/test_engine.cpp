#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace glap::sim {
namespace {

/// Records the order in which execute fires.
class RecordingProtocol final : public Protocol {
 public:
  explicit RecordingProtocol(std::vector<NodeId>* log) : log_(log) {}
  void select_peers(Engine&, NodeId, PeerSet&) override {}  // touches only self
  void execute(Engine&, NodeId self, const PeerSet&) override {
    log_->push_back(self);
  }
  void on_status_change(Engine&, NodeId self, NodeStatus status) override {
    status_changes.push_back({self, status});
  }

  std::vector<std::pair<NodeId, NodeStatus>> status_changes;

 private:
  std::vector<NodeId>* log_;
};

std::vector<std::unique_ptr<Protocol>> make_recorders(
    std::size_t n, std::vector<NodeId>* log) {
  std::vector<std::unique_ptr<Protocol>> v;
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(std::make_unique<RecordingProtocol>(log));
  return v;
}

TEST(Engine, EveryActiveNodeRunsOncePerRound) {
  Engine engine(10, 1);
  std::vector<NodeId> log;
  engine.add_protocol_slot(make_recorders(10, &log));
  engine.step();
  EXPECT_EQ(log.size(), 10u);
  std::vector<NodeId> sorted = log;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Engine, OrderIsShuffledBetweenRounds) {
  Engine engine(50, 2);
  std::vector<NodeId> log;
  engine.add_protocol_slot(make_recorders(50, &log));
  engine.step();
  std::vector<NodeId> round1 = log;
  log.clear();
  engine.step();
  EXPECT_NE(round1, log);
}

TEST(Engine, SameSeedSameSchedule) {
  std::vector<NodeId> log_a, log_b;
  {
    Engine engine(20, 7);
    engine.add_protocol_slot(make_recorders(20, &log_a));
    engine.step();
    engine.step();
  }
  {
    Engine engine(20, 7);
    engine.add_protocol_slot(make_recorders(20, &log_b));
    engine.step();
    engine.step();
  }
  EXPECT_EQ(log_a, log_b);
}

TEST(Engine, SleepingNodesDoNotInitiate) {
  Engine engine(5, 3);
  std::vector<NodeId> log;
  engine.add_protocol_slot(make_recorders(5, &log));
  engine.set_status(2, NodeStatus::kSleeping);
  engine.step();
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(std::count(log.begin(), log.end(), NodeId{2}), 0);
}

TEST(Engine, ActiveCountTracksStatus) {
  Engine engine(4, 4);
  EXPECT_EQ(engine.active_count(), 4u);
  engine.set_status(0, NodeStatus::kSleeping);
  EXPECT_EQ(engine.active_count(), 3u);
  engine.set_status(0, NodeStatus::kActive);
  EXPECT_EQ(engine.active_count(), 4u);
  engine.set_status(1, NodeStatus::kFailed);
  EXPECT_EQ(engine.active_count(), 3u);
}

TEST(Engine, StatusChangeNotifiesProtocols) {
  Engine engine(3, 5);
  std::vector<NodeId> log;
  auto instances = make_recorders(3, &log);
  auto* p1 = static_cast<RecordingProtocol*>(instances[1].get());
  engine.add_protocol_slot(std::move(instances));
  engine.set_status(1, NodeStatus::kSleeping);
  ASSERT_EQ(p1->status_changes.size(), 1u);
  EXPECT_EQ(p1->status_changes[0].first, 1u);
  EXPECT_EQ(p1->status_changes[0].second, NodeStatus::kSleeping);
}

TEST(Engine, FailedNodesCannotRecover) {
  Engine engine(2, 6);
  engine.set_status(0, NodeStatus::kFailed);
  EXPECT_THROW(engine.set_status(0, NodeStatus::kActive), precondition_error);
}

TEST(Engine, RedundantStatusChangeIsNoop) {
  Engine engine(2, 6);
  std::vector<NodeId> log;
  auto instances = make_recorders(2, &log);
  auto* p0 = static_cast<RecordingProtocol*>(instances[0].get());
  engine.add_protocol_slot(std::move(instances));
  engine.set_status(0, NodeStatus::kActive);
  EXPECT_TRUE(p0->status_changes.empty());
}

class StopAfterObserver final : public Observer {
 public:
  explicit StopAfterObserver(Round stop_at) : stop_at_(stop_at) {}
  bool on_round_end(Engine&, Round round) override {
    ++calls;
    return round < stop_at_;
  }
  int calls = 0;

 private:
  Round stop_at_;
};

TEST(Engine, ObserverCanStopRun) {
  Engine engine(3, 8);
  std::vector<NodeId> log;
  engine.add_protocol_slot(make_recorders(3, &log));
  StopAfterObserver obs(4);
  engine.add_observer(&obs);
  const Round executed = engine.run(100);
  EXPECT_EQ(executed, 4u);
  EXPECT_EQ(obs.calls, 4);
  EXPECT_EQ(engine.current_round(), 4u);
}

TEST(Engine, RunExecutesRequestedRounds) {
  Engine engine(3, 9);
  std::vector<NodeId> log;
  engine.add_protocol_slot(make_recorders(3, &log));
  EXPECT_EQ(engine.run(7), 7u);
  EXPECT_EQ(log.size(), 21u);
}

TEST(Engine, ProtocolAtTypeMismatchThrows) {
  Engine engine(2, 10);
  std::vector<NodeId> log;
  engine.add_protocol_slot(make_recorders(2, &log));
  EXPECT_NO_THROW(engine.protocol_at<RecordingProtocol>(0, 0));
  class Other final : public Protocol {
    void execute(Engine&, NodeId, const PeerSet&) override {}
  };
  EXPECT_THROW(engine.protocol_at<Other>(0, 0), precondition_error);
}

TEST(Engine, ValidatesConstructionAndSlots) {
  EXPECT_THROW(Engine(0, 1), precondition_error);
  Engine engine(3, 1);
  std::vector<NodeId> log;
  EXPECT_THROW(engine.add_protocol_slot(make_recorders(2, &log)),
               precondition_error);
  EXPECT_THROW(engine.status(99), precondition_error);
}

TEST(NetworkStats, CountsMessagesAndBytes) {
  NetworkStats net;
  net.count_message(0, 1, 100);
  net.count_message(1, 0, 50);
  EXPECT_EQ(net.messages(), 2u);
  EXPECT_EQ(net.bytes(), 150u);
  net.reset();
  EXPECT_EQ(net.messages(), 0u);
}

TEST(NodeStatus, ToString) {
  EXPECT_STREQ(to_string(NodeStatus::kActive), "active");
  EXPECT_STREQ(to_string(NodeStatus::kSleeping), "sleeping");
  EXPECT_STREQ(to_string(NodeStatus::kFailed), "failed");
}

}  // namespace
}  // namespace glap::sim
