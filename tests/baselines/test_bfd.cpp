#include "baselines/bfd.hpp"

#include <gtest/gtest.h>

namespace glap::baselines {
namespace {

TEST(Bfd, PerfectFitUsesMinimumBins) {
  // Four VMs of half a PM each -> exactly two bins.
  const Resources cap{100.0, 100.0};
  std::vector<Resources> vms(4, Resources{50.0, 50.0});
  EXPECT_EQ(bfd_bin_count(vms, cap), 2u);
}

TEST(Bfd, SingleLargeItemPerBin) {
  const Resources cap{100.0, 100.0};
  std::vector<Resources> vms(3, Resources{60.0, 10.0});
  EXPECT_EQ(bfd_bin_count(vms, cap), 3u);
}

TEST(Bfd, DecreasingOrderPacksTightly) {
  const Resources cap{10.0, 10.0};
  // Items 6,5,4,3,2 on CPU (mem negligible): BFD gives 6+4, 5+3+2 -> 2.
  std::vector<Resources> vms{{6, 1}, {5, 1}, {4, 1}, {3, 1}, {2, 1}};
  EXPECT_EQ(bfd_bin_count(vms, cap), 2u);
}

TEST(Bfd, MemoryCanBeTheBindingResource) {
  const Resources cap{100.0, 10.0};
  std::vector<Resources> vms(4, Resources{10.0, 6.0});
  EXPECT_EQ(bfd_bin_count(vms, cap), 4u);
}

TEST(Bfd, EmptyInputUsesNoBins) {
  EXPECT_EQ(bfd_bin_count(std::vector<Resources>{}, {10.0, 10.0}), 0u);
}

TEST(Bfd, OversizedVmRejected) {
  EXPECT_THROW(
      bfd_bin_count({Resources{11.0, 1.0}}, Resources{10.0, 10.0}),
      precondition_error);
}

TEST(Bfd, ZeroCapacityRejected) {
  EXPECT_THROW(bfd_bin_count({Resources{1.0, 1.0}}, Resources{0.0, 10.0}),
               precondition_error);
}

TEST(Bfd, DataCenterConvenienceMatchesManual) {
  cloud::DataCenter dc(4, 8, cloud::DataCenterConfig{});
  for (cloud::VmId v = 0; v < 8; ++v)
    dc.place(v, static_cast<cloud::PmId>(v / 2));
  std::vector<Resources> demands(8, Resources{0.5, 0.5});
  dc.observe_demands(demands);
  std::vector<Resources> usages;
  for (cloud::VmId v = 0; v < 8; ++v)
    usages.push_back(dc.vm_current_usage(v));
  EXPECT_EQ(bfd_bin_count(dc),
            bfd_bin_count(usages, dc.config().pm_spec.capacity()));
}

TEST(Bfd, NeverBeatsTotalLoadLowerBound) {
  const Resources cap{10.0, 10.0};
  std::vector<Resources> vms;
  double total_cpu = 0.0;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Resources vm{rng.uniform(0.5, 4.0), rng.uniform(0.5, 4.0)};
    total_cpu += vm.cpu;
    vms.push_back(vm);
  }
  const auto lower_bound =
      static_cast<std::size_t>(std::ceil(total_cpu / cap.cpu));
  EXPECT_GE(bfd_bin_count(vms, cap), lower_bound);
}

}  // namespace
}  // namespace glap::baselines
