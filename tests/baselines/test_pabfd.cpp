#include "baselines/pabfd.hpp"

#include <gtest/gtest.h>

namespace glap::baselines {
namespace {

struct TestBed {
  cloud::DataCenter dc;
  sim::Engine engine;
  sim::Engine::ProtocolSlot slot;

  TestBed(std::size_t pms, std::size_t vms, const PabfdConfig& config,
          std::uint64_t seed)
      : dc(pms, vms, cloud::DataCenterConfig{}), engine(pms, seed) {
    slot = PabfdManager::install(engine, config, dc);
  }

  PabfdManager& manager() {
    return engine.protocol_at<PabfdManager>(slot, 0);
  }
};

PabfdConfig immediate() {
  PabfdConfig config;
  config.interval_rounds = 1;
  return config;
}

TEST(PabfdMad, HandComputedValues) {
  // median of {1,2,3,4,5} = 3; deviations {2,1,0,1,2}; MAD = 1.
  EXPECT_DOUBLE_EQ(PabfdManager::mad({1, 2, 3, 4, 5}), 1.0);
  // Constant series: MAD 0.
  EXPECT_DOUBLE_EQ(PabfdManager::mad({4, 4, 4, 4}), 0.0);
  // Even-sized: median of {1,2,3,4} = 2.5; deviations {1.5,0.5,0.5,1.5};
  // MAD = median = 1.0.
  EXPECT_DOUBLE_EQ(PabfdManager::mad({1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(PabfdManager::mad({7}), 0.0);
}

TEST(PabfdMad, RobustToOutliers) {
  // One wild outlier barely moves the MAD.
  const double clean = PabfdManager::mad({0.5, 0.5, 0.5, 0.5, 0.5});
  const double dirty = PabfdManager::mad({0.5, 0.5, 0.5, 0.5, 100.0});
  EXPECT_DOUBLE_EQ(clean, 0.0);
  EXPECT_DOUBLE_EQ(dirty, 0.0);
}

TEST(Pabfd, DefaultThresholdBeforeHistory) {
  TestBed bed(3, 3, immediate(), 1);
  EXPECT_DOUBLE_EQ(bed.manager().upper_threshold(0),
                   PabfdConfig{}.default_upper);
}

TEST(Pabfd, AdaptiveThresholdAfterHistory) {
  PabfdConfig config = immediate();
  config.min_history = 4;
  TestBed bed(2, 4, config, 2);
  for (cloud::VmId v = 0; v < 4; ++v)
    bed.dc.place(v, static_cast<cloud::PmId>(v / 2));
  // Alternate demand so the PM's utilization history has spread.
  for (int round = 0; round < 12; ++round) {
    const double f = (round % 2 == 0) ? 0.2 : 0.7;
    std::vector<Resources> demands(4, Resources{f, 0.2});
    bed.dc.observe_demands(demands);
    bed.engine.step();
  }
  const double tu = bed.manager().upper_threshold(0);
  EXPECT_LT(tu, 1.0);
  EXPECT_GE(tu, config.min_upper);
}

TEST(Pabfd, StableHistoryKeepsHighThreshold) {
  PabfdConfig config = immediate();
  config.min_history = 4;
  TestBed bed(2, 2, config, 3);
  bed.dc.place(0, 0);
  bed.dc.place(1, 1);
  for (int round = 0; round < 10; ++round) {
    std::vector<Resources> demands(2, Resources{0.5, 0.2});
    bed.dc.observe_demands(demands);
    bed.engine.step();
  }
  // MAD of a constant series is 0 -> Tu = 1.
  EXPECT_DOUBLE_EQ(bed.manager().upper_threshold(0), 1.0);
}

TEST(Pabfd, RelievesOverloadedHost) {
  TestBed bed(3, 8, immediate(), 4);
  for (cloud::VmId v = 0; v < 7; ++v) bed.dc.place(v, 1);
  bed.dc.place(7, 2);
  // PM1: 7 x 0.8 x 500 = 2800 > 2660 -> overloaded; manager must fix it.
  std::vector<Resources> demands(8, Resources{0.8, 0.2});
  bed.dc.observe_demands(demands);
  ASSERT_TRUE(bed.dc.overloaded(1));
  bed.engine.step();
  EXPECT_FALSE(bed.dc.overloaded(1));
  EXPECT_GT(bed.dc.total_migrations(), 0u);
}

TEST(Pabfd, EvacuatesUnderloadedHostAndSleepsIt) {
  TestBed bed(3, 4, immediate(), 5);
  bed.dc.place(0, 1);
  bed.dc.place(1, 2);
  bed.dc.place(2, 2);
  bed.dc.place(3, 2);
  std::vector<Resources> demands(4, Resources{0.3, 0.3});
  bed.dc.observe_demands(demands);
  bed.engine.step();
  // PM1's single VM fits on PM2; PM1 switches off. PM0 hosts the manager
  // and must stay on even though it is empty.
  EXPECT_FALSE(bed.dc.pm_on(1));
  EXPECT_TRUE(bed.dc.pm_on(0));
  EXPECT_EQ(bed.dc.pm(2).vm_count(), 4u);
}

TEST(Pabfd, ManagerHostNeverSleeps) {
  TestBed bed(2, 1, immediate(), 6);
  bed.dc.place(0, 0);  // manager host has the only VM
  std::vector<Resources> demands(1, Resources{0.1, 0.1});
  bed.dc.observe_demands(demands);
  for (int i = 0; i < 5; ++i) bed.engine.step();
  EXPECT_TRUE(bed.dc.pm_on(0));
}

TEST(Pabfd, WakesSleepingHostWhenNothingFits) {
  PabfdConfig config = immediate();
  TestBed bed(3, 11, config, 7);
  // PM1 and PM2 both heavily loaded; PM0 (manager) empty-ish is not
  // enough... fill everything so relief requires waking nobody is
  // sleeping yet; first make PM2 sleep via evacuation, then overload.
  for (cloud::VmId v = 0; v < 5; ++v) bed.dc.place(v, 0);
  for (cloud::VmId v = 5; v < 11; ++v) bed.dc.place(v, 1);
  {
    // Round 1: PM2 is empty and not the manager -> it sleeps.
    std::vector<Resources> demands(11, Resources{0.5, 0.2});
    bed.dc.observe_demands(demands);
    bed.engine.step();
  }
  ASSERT_FALSE(bed.dc.pm_on(2));
  {
    // Round 2: both active PMs overload; relief has nowhere to go but a
    // woken host.
    std::vector<Resources> demands(11, Resources{1.0, 0.2});
    bed.dc.observe_demands(demands);
    bed.engine.step();
  }
  EXPECT_TRUE(bed.dc.pm_on(2));
}

TEST(Pabfd, IntervalThrottlesReconsolidation) {
  PabfdConfig config;
  config.interval_rounds = 3;
  TestBed bed(3, 4, config, 8);
  bed.dc.place(0, 1);
  bed.dc.place(1, 2);
  bed.dc.place(2, 2);
  bed.dc.place(3, 2);
  std::vector<Resources> demands(4, Resources{0.3, 0.3});
  // Rounds 1 and 2: history only; round 3: the controller acts.
  bed.dc.observe_demands(demands);
  bed.engine.step();
  EXPECT_EQ(bed.dc.total_migrations(), 0u);
  bed.dc.observe_demands(demands);
  bed.engine.step();
  EXPECT_EQ(bed.dc.total_migrations(), 0u);
  bed.dc.observe_demands(demands);
  bed.engine.step();
  EXPECT_GT(bed.dc.total_migrations(), 0u);
}

TEST(Pabfd, ConfigValidation) {
  cloud::DataCenter dc(2, 2, cloud::DataCenterConfig{});
  EXPECT_THROW(PabfdManager({.mad_safety = 0.0}, dc), precondition_error);
  EXPECT_THROW(
      PabfdManager({.history_window = 5, .min_history = 10}, dc),
      precondition_error);
  EXPECT_THROW(PabfdManager({.min_history = 1}, dc), precondition_error);
  EXPECT_THROW(PabfdManager::mad({}), precondition_error);
}

}  // namespace
}  // namespace glap::baselines
