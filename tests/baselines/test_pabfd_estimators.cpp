// Tests for PABFD's alternative adaptive-threshold estimators (the GLAP
// paper notes the comparator work evaluated MAD, IQR and Robust Local
// Regression).
#include <gtest/gtest.h>

#include "baselines/pabfd.hpp"

namespace glap::baselines {
namespace {

TEST(Iqr, HandComputedValues) {
  // Sorted {1..8}: Q1 = 2.75, Q3 = 6.25 (linear interpolation) -> 3.5.
  EXPECT_DOUBLE_EQ(PabfdManager::iqr({1, 2, 3, 4, 5, 6, 7, 8}), 3.5);
  EXPECT_DOUBLE_EQ(PabfdManager::iqr({4, 4, 4}), 0.0);
  EXPECT_DOUBLE_EQ(PabfdManager::iqr({7}), 0.0);
  EXPECT_THROW(PabfdManager::iqr({}), precondition_error);
}

TEST(Iqr, OrderIndependent) {
  EXPECT_DOUBLE_EQ(PabfdManager::iqr({8, 1, 6, 3, 5, 2, 7, 4}),
                   PabfdManager::iqr({1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(LrForecast, ExtrapolatesLinearTrend) {
  // y = 2t + 1 over t=0..4 -> forecast at t=5 is 11.
  EXPECT_NEAR(PabfdManager::lr_forecast({1, 3, 5, 7, 9}), 11.0, 1e-9);
}

TEST(LrForecast, FlatSeriesForecastsItself) {
  EXPECT_NEAR(PabfdManager::lr_forecast({0.5, 0.5, 0.5, 0.5}), 0.5, 1e-12);
}

TEST(LrForecast, DecreasingTrend) {
  EXPECT_LT(PabfdManager::lr_forecast({0.9, 0.7, 0.5, 0.3}), 0.3);
  EXPECT_THROW(PabfdManager::lr_forecast({1.0}), precondition_error);
}

struct EstimatorBed {
  cloud::DataCenter dc;
  sim::Engine engine;
  sim::Engine::ProtocolSlot slot;

  explicit EstimatorBed(const PabfdConfig& config)
      : dc(2, 2, cloud::DataCenterConfig{}), engine(2, 1) {
    slot = PabfdManager::install(engine, config, dc);
    dc.place(0, 0);
    dc.place(1, 1);
  }

  void run_rounds(int n, double lo, double hi) {
    for (int round = 0; round < n; ++round) {
      const double f = (round % 2 == 0) ? lo : hi;
      std::vector<Resources> demands(2, Resources{f, 0.2});
      dc.observe_demands(demands);
      engine.step();
    }
  }

  double threshold() {
    return engine.protocol_at<PabfdManager>(slot, 0).upper_threshold(0);
  }
};

TEST(Estimators, VolatileHistoryLowersThresholdForAll) {
  for (ThresholdEstimator est : {ThresholdEstimator::kMad,
                                 ThresholdEstimator::kIqr}) {
    PabfdConfig config;
    config.estimator = est;
    config.interval_rounds = 1;
    config.min_history = 4;
    EstimatorBed volatile_bed(config);
    volatile_bed.run_rounds(12, 0.2, 0.8);
    EstimatorBed stable_bed(config);
    stable_bed.run_rounds(12, 0.5, 0.5);
    EXPECT_LT(volatile_bed.threshold(), stable_bed.threshold())
        << to_string(est);
    EXPECT_DOUBLE_EQ(stable_bed.threshold(), 1.0) << to_string(est);
  }
}

TEST(Estimators, LrPenalizesRisingTrend) {
  PabfdConfig config;
  config.estimator = ThresholdEstimator::kLr;
  config.interval_rounds = 1;
  config.min_history = 4;
  // Rising utilization: each VM ramps its demand upward.
  EstimatorBed rising(config);
  for (int round = 0; round < 12; ++round) {
    const double f = 0.1 + 0.05 * round;
    std::vector<Resources> demands(2, Resources{f, 0.2});
    rising.dc.observe_demands(demands);
    rising.engine.step();
  }
  EstimatorBed flat(config);
  flat.run_rounds(12, 0.5, 0.5);
  EXPECT_LT(rising.threshold(), flat.threshold());
  // The manager's own consolidation steps the history once, so "flat" is
  // near — not exactly — trendless.
  EXPECT_GT(flat.threshold(), 0.9);
}

TEST(Estimators, NamesRoundTrip) {
  EXPECT_STREQ(to_string(ThresholdEstimator::kMad), "MAD");
  EXPECT_STREQ(to_string(ThresholdEstimator::kIqr), "IQR");
  EXPECT_STREQ(to_string(ThresholdEstimator::kLr), "LR");
}

}  // namespace
}  // namespace glap::baselines
