#include "baselines/grmp.hpp"

#include <gtest/gtest.h>

#include "overlay/random_graph.hpp"

namespace glap::baselines {
namespace {

struct TestBed {
  cloud::DataCenter dc;
  sim::Engine engine;

  TestBed(std::size_t pms, std::size_t vms, const GrmpConfig& config,
          std::uint64_t seed)
      : dc(pms, vms, cloud::DataCenterConfig{}), engine(pms, seed) {
    const auto overlay = overlay::RandomGraphProtocol::install(
        engine, {.degree = pms - 1}, seed);
    GrmpProtocol::install(engine, config, dc, overlay);
  }
};

TEST(Grmp, PacksLowerUtilizedIntoHigher) {
  TestBed bed(2, 3, {}, 1);
  bed.dc.place(0, 0);
  bed.dc.place(1, 1);
  bed.dc.place(2, 1);
  std::vector<Resources> demands(3, Resources{0.3, 0.3});
  bed.dc.observe_demands(demands);
  bed.engine.step();
  EXPECT_EQ(bed.dc.pm(0).vm_count(), 0u);
  EXPECT_FALSE(bed.dc.pm_on(0));
  EXPECT_EQ(bed.dc.pm(1).vm_count(), 3u);
}

TEST(Grmp, ThresholdGatesCpuAcceptance) {
  TestBed bed(2, 10, {.upper_threshold = 0.8}, 2);
  for (cloud::VmId v = 0; v < 5; ++v) bed.dc.place(v, 0);
  for (cloud::VmId v = 5; v < 10; ++v) bed.dc.place(v, 1);
  // Each VM uses 0.8 * 500 = 400 MIPS; 5 VMs = 2000 MIPS = 0.75 util.
  // Adding one more -> 2400 = 0.90 > 0.8 threshold: nothing may move.
  std::vector<Resources> demands(10, Resources{0.8, 0.1});
  bed.dc.observe_demands(demands);
  bed.engine.step();
  EXPECT_EQ(bed.dc.pm(0).vm_count(), 5u);
  EXPECT_EQ(bed.dc.pm(1).vm_count(), 5u);
}

TEST(Grmp, MemoryGuardedOnlyByCapacityByDefault) {
  // CPU-only threshold: memory may be packed past 0.8 of capacity but
  // never past 1.0.
  TestBed bed(2, 8, {}, 3);
  for (cloud::VmId v = 0; v < 4; ++v) bed.dc.place(v, 0);
  for (cloud::VmId v = 4; v < 8; ++v) bed.dc.place(v, 1);
  // Memory-heavy, CPU-light: 8 VMs x 613 MB = 4904 MB > 4096 capacity,
  // so a full merge is impossible, but 6 VMs (3678 MB = 0.90 of mem) is
  // allowed because only CPU is thresholded.
  std::vector<Resources> demands(8, Resources{0.05, 1.0});
  bed.dc.observe_demands(demands);
  bed.engine.step();
  const std::size_t max_count =
      std::max(bed.dc.pm(0).vm_count(), bed.dc.pm(1).vm_count());
  EXPECT_EQ(max_count, 6u);
  EXPECT_LE(bed.dc.current_utilization(
                   max_count == bed.dc.pm(0).vm_count() ? 0 : 1)
                .mem,
            1.0);
}

TEST(Grmp, BothResourcesThresholdedWhenConfigured) {
  TestBed bed(2, 8, {.threshold_both_resources = true}, 4);
  for (cloud::VmId v = 0; v < 4; ++v) bed.dc.place(v, 0);
  for (cloud::VmId v = 4; v < 8; ++v) bed.dc.place(v, 1);
  std::vector<Resources> demands(8, Resources{0.05, 1.0});
  bed.dc.observe_demands(demands);
  bed.engine.step();
  // 0.8 * 4096 = 3276 MB -> at most 5 VMs of 613 MB.
  EXPECT_LE(std::max(bed.dc.pm(0).vm_count(), bed.dc.pm(1).vm_count()), 5u);
}

TEST(Grmp, NoOverloadReliefPath) {
  // An overloaded PM stays overloaded even when its neighbor has headroom
  // below the threshold: GRMP's objective is packing, not relief.
  TestBed bed(2, 8, {}, 5);
  for (cloud::VmId v = 0; v < 7; ++v) bed.dc.place(v, 0);
  bed.dc.place(7, 1);
  std::vector<Resources> demands(8, Resources{0.8, 0.2});
  bed.dc.observe_demands(demands);
  ASSERT_TRUE(bed.dc.overloaded(0));  // 7 x 400 = 2800 > 2660
  bed.engine.step();
  // The only legal direction is PM1 (400 MIPS) -> PM0, which the
  // threshold forbids; PM0 cannot shed.
  EXPECT_TRUE(bed.dc.overloaded(0));
  EXPECT_EQ(bed.dc.pm(0).vm_count(), 7u);
}

TEST(Grmp, PicksLargestCpuVmFirst) {
  TestBed bed(2, 3, {}, 6);
  bed.dc.place(0, 0);
  bed.dc.place(1, 0);
  bed.dc.place(2, 1);
  // PM1 holds the big VM so PM0 (2 small VMs but lower total) drains.
  std::vector<Resources> demands{{0.1, 0.1}, {0.4, 0.1}, {0.9, 0.1}};
  bed.dc.observe_demands(demands);
  bed.engine.step();
  // PM0's bigger VM (vm 1) must have moved (both fit, order is by CPU).
  EXPECT_EQ(bed.dc.host_of(1), 1u);
  EXPECT_EQ(bed.dc.host_of(0), 1u);
}

TEST(Grmp, ConfigValidation) {
  cloud::DataCenter dc(2, 2, cloud::DataCenterConfig{});
  EXPECT_THROW(GrmpProtocol({.upper_threshold = 0.0}, dc, 0),
               precondition_error);
  EXPECT_THROW(GrmpProtocol({.upper_threshold = 1.5}, dc, 0),
               precondition_error);
}

}  // namespace
}  // namespace glap::baselines
