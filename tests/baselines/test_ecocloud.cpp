#include "baselines/ecocloud.hpp"

#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace glap::baselines {
namespace {

TEST(EcoCloudAcceptance, ZeroAtAndAboveT2) {
  EcoCloudConfig config;
  EXPECT_DOUBLE_EQ(
      EcoCloudProtocol::acceptance_probability(config.upper_threshold, config),
      0.0);
  EXPECT_DOUBLE_EQ(EcoCloudProtocol::acceptance_probability(0.95, config),
                   0.0);
  EXPECT_DOUBLE_EQ(EcoCloudProtocol::acceptance_probability(-0.1, config),
                   0.0);
}

TEST(EcoCloudAcceptance, PeaksAtOneInsideBand) {
  EcoCloudConfig config;
  const double x_peak = config.accept_shape / (config.accept_shape + 1.0);
  const double u_peak = x_peak * config.upper_threshold;
  EXPECT_NEAR(EcoCloudProtocol::acceptance_probability(u_peak, config), 1.0,
              1e-9);
}

TEST(EcoCloudAcceptance, BoundedByOne) {
  EcoCloudConfig config;
  for (double u = 0.0; u < 1.0; u += 0.01) {
    const double p = EcoCloudProtocol::acceptance_probability(u, config);
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0 + 1e-12);
  }
}

TEST(EcoCloudAcceptance, PrefersFullerServersBelowPeak) {
  EcoCloudConfig config;
  EXPECT_LT(EcoCloudProtocol::acceptance_probability(0.1, config),
            EcoCloudProtocol::acceptance_probability(0.4, config));
}

TEST(EcoCloudUnderload, StrongDrainBelowT1) {
  EcoCloudConfig config;
  EXPECT_DOUBLE_EQ(
      EcoCloudProtocol::underload_migration_probability(0.0, config),
      config.migrate_prob_scale);
  const double at_t1 = EcoCloudProtocol::underload_migration_probability(
      config.lower_threshold, config);
  // Continuous handoff into the (weak) mid band at T1.
  EXPECT_LE(at_t1, config.mid_band_scale);
}

TEST(EcoCloudUnderload, MidBandIsWeakAndVanishesAtT2) {
  EcoCloudConfig config;
  const double mid = EcoCloudProtocol::underload_migration_probability(
      0.5 * (config.lower_threshold + config.upper_threshold), config);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, config.migrate_prob_scale);
  EXPECT_NEAR(EcoCloudProtocol::underload_migration_probability(
                  config.upper_threshold - 1e-9, config),
              0.0, 1e-6);
  EXPECT_DOUBLE_EQ(EcoCloudProtocol::underload_migration_probability(
                       config.upper_threshold + 0.01, config),
                   0.0);
}

TEST(EcoCloudUnderload, MonotoneNonIncreasingWithinEachBand) {
  // The probability decreases within the strong (<T1) band and within the
  // weak (T1, T2) band; the junction itself steps up from ~0 to the weak
  // residual by design.
  EcoCloudConfig config;
  double prev = 1.0;
  for (double u = 0.0; u < config.lower_threshold; u += 0.005) {
    const double p =
        EcoCloudProtocol::underload_migration_probability(u, config);
    ASSERT_LE(p, prev + 1e-9) << "strong band rose at u=" << u;
    prev = p;
  }
  prev = 1.0;
  for (double u = config.lower_threshold; u < config.upper_threshold;
       u += 0.005) {
    const double p =
        EcoCloudProtocol::underload_migration_probability(u, config);
    ASSERT_LE(p, prev + 1e-9) << "weak band rose at u=" << u;
    prev = p;
  }
}

struct TestBed {
  cloud::DataCenter dc;
  sim::Engine engine;
  sim::Engine::ProtocolSlot slot;

  TestBed(std::size_t pms, std::size_t vms, const EcoCloudConfig& config,
          std::uint64_t seed)
      : dc(pms, vms, cloud::DataCenterConfig{}), engine(pms, seed) {
    slot = EcoCloudProtocol::install(engine, config, dc, seed);
  }
};

TEST(EcoCloud, FailedEvacuationMovesNothingAndCoolsDown) {
  // PM 0 is nearly idle (drain fires with probability 1) but both peers
  // sit above T2, where the acceptance probability is exactly zero — the
  // evacuation plan must fail without moving any of PM 0's VMs.
  EcoCloudConfig config;
  config.migrate_prob_scale = 1.0;
  config.evacuation_cooldown = 40;
  TestBed bed(3, 14, config, 1);
  bed.dc.place(0, 0);
  bed.dc.place(1, 0);
  for (cloud::VmId v = 2; v < 8; ++v) bed.dc.place(v, 1);
  for (cloud::VmId v = 8; v < 14; ++v) bed.dc.place(v, 2);
  std::vector<Resources> demands(14, Resources{0.05, 0.9});
  demands[0] = demands[1] = {0.0, 0.0};  // PM 0's VMs idle -> p(drain)=1
  bed.dc.observe_demands(demands);
  // Peers: 6 x 0.9 x 613 MB = 3310 MB = 0.81 util > T2 -> accept prob 0.
  ASSERT_GT(bed.dc.current_utilization(1).mem, config.upper_threshold);
  bed.engine.step();
  EXPECT_EQ(bed.dc.host_of(0), 0u);
  EXPECT_EQ(bed.dc.host_of(1), 0u);
  EXPECT_TRUE(bed.dc.pm_on(0));
  const auto& node0 =
      bed.engine.protocol_at<EcoCloudProtocol>(bed.slot, 0);
  EXPECT_EQ(node0.cooldown_remaining(), 40u);
}

TEST(EcoCloud, SuccessfulEvacuationSleepsServer) {
  EcoCloudConfig config;
  config.migrate_prob_scale = 1.0;
  config.mid_band_scale = 1.0;
  config.probe_count = 64;
  config.evacuation_cooldown = 1;  // retry quickly in this tiny cluster
  TestBed bed(3, 3, config, 2);
  for (cloud::VmId v = 0; v < 3; ++v)
    bed.dc.place(v, static_cast<cloud::PmId>(v));
  // Light demand in the acceptance sweet spot region after merging.
  std::vector<Resources> demands(3, Resources{0.5, 0.5});
  bed.dc.observe_demands(demands);
  for (int round = 0; round < 30 && bed.dc.active_pm_count() > 1; ++round)
    bed.engine.step();
  EXPECT_LT(bed.dc.active_pm_count(), 3u);
  // No VM lives on a sleeping server.
  for (cloud::VmId v = 0; v < 3; ++v)
    EXPECT_TRUE(bed.dc.pm_on(bed.dc.host_of(v)));
}

TEST(EcoCloud, CooldownDecrementsAndSuppressesRetry) {
  EcoCloudConfig config;
  config.migrate_prob_scale = 1.0;
  config.evacuation_cooldown = 3;
  TestBed bed(3, 14, config, 3);
  bed.dc.place(0, 0);
  bed.dc.place(1, 0);
  for (cloud::VmId v = 2; v < 8; ++v) bed.dc.place(v, 1);
  for (cloud::VmId v = 8; v < 14; ++v) bed.dc.place(v, 2);
  std::vector<Resources> demands(14, Resources{0.05, 0.9});
  demands[0] = demands[1] = {0.0, 0.0};
  bed.dc.observe_demands(demands);
  bed.engine.step();  // plan fails -> cooldown = 3
  const auto& node0 =
      bed.engine.protocol_at<EcoCloudProtocol>(bed.slot, 0);
  ASSERT_EQ(node0.cooldown_remaining(), 3u);
  bed.engine.step();
  EXPECT_EQ(node0.cooldown_remaining(), 2u);
  bed.engine.step();
  EXPECT_EQ(node0.cooldown_remaining(), 1u);
  // Throughout, PM 0 keeps its VMs.
  EXPECT_EQ(bed.dc.pm(0).vm_count(), 2u);
}

// Regression for the plan_evacuation reservation map (now std::map,
// PR 5): EcoCloud's evacuation decisions must not depend on engine
// execution order. An underloaded fleet drives the evacuation planner
// hard; serial and 4-thread wave-parallel runs must agree on every
// aggregate.
TEST(EcoCloud, EvacuationPlanningIsEngineOrderIndependent) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kEcoCloud;
  config.pm_count = 100;
  config.vm_ratio = 1;  // underloaded: the evacuation path dominates
  config.warmup_rounds = 40;
  config.rounds = 40;
  config.seed = 21;
  const harness::RunResult serial = harness::run_experiment(config);

  config.engine_threads = 4;
  const harness::RunResult par4 = harness::run_experiment(config);

  EXPECT_GT(serial.total_migrations, 0u)
      << "config no longer exercises the evacuation planner";
  EXPECT_EQ(serial.total_migrations, par4.total_migrations);
  EXPECT_EQ(serial.migration_energy_j, par4.migration_energy_j);
  EXPECT_EQ(serial.total_energy_j, par4.total_energy_j);
  EXPECT_EQ(serial.final_active_pms, par4.final_active_pms);
  EXPECT_EQ(serial.messages, par4.messages);
  EXPECT_EQ(serial.bytes, par4.bytes);
  ASSERT_EQ(serial.rounds.size(), par4.rounds.size());
  for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
    EXPECT_EQ(serial.rounds[r].active_pms, par4.rounds[r].active_pms)
        << "round " << r;
    EXPECT_EQ(serial.rounds[r].migrations_cum,
              par4.rounds[r].migrations_cum)
        << "round " << r;
  }
}

TEST(EcoCloud, ConfigValidation) {
  cloud::DataCenter dc(2, 2, cloud::DataCenterConfig{});
  EcoCloudConfig bad;
  bad.lower_threshold = 0.9;  // T1 > T2
  EXPECT_THROW(EcoCloudProtocol(bad, dc, Rng(1)), precondition_error);
  EcoCloudConfig zero_probe;
  zero_probe.probe_count = 0;
  EXPECT_THROW(EcoCloudProtocol(zero_probe, dc, Rng(1)), precondition_error);
}

}  // namespace
}  // namespace glap::baselines
