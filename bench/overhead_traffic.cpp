// Scalability overhead bench (supports the paper's §I scalability
// argument): control-plane traffic per protocol as the cluster grows —
// gossip protocols exchange O(1) messages per PM per round while the
// centralized manager polls every PM every round.
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header(
      "Overhead — control-plane traffic per protocol and cluster size",
      scale);

  ThreadPool pool;
  std::vector<std::size_t> sizes = scale.sizes;
  if (sizes.size() == 1) sizes = {sizes[0] / 2, sizes[0], sizes[0] * 2};

  std::vector<harness::ExperimentConfig> cells;
  for (std::size_t size : sizes)
    for (bench::Algorithm algo : bench::all_algorithms()) {
      harness::ExperimentConfig config;
      config.algorithm = algo;
      config.pm_count = size;
      config.vm_ratio = scale.ratios[0];
      apply_scale(config, scale);
      cells.push_back(config);
    }

  const auto results = harness::run_cells(cells, 1, pool);

  ConsoleTable table({"pms", "algorithm", "msgs(eval)", "msgs/pm/round",
                      "bytes(eval)"});
  std::size_t idx = 0;
  for (std::size_t size : sizes) {
    for (bench::Algorithm algo : bench::all_algorithms()) {
      (void)algo;
      const auto& cell = results[idx++];
      const auto& run = cell.runs.front();
      const double per_pm_round =
          static_cast<double>(run.messages) /
          (static_cast<double>(size) * cell.config.rounds);
      table.add_row({std::to_string(size),
                     std::string(to_string(cell.config.algorithm)),
                     std::to_string(run.messages),
                     format_double(per_pm_round, 2),
                     std::to_string(run.bytes)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report(
      "overhead_traffic",
      "Overhead — control-plane traffic per protocol and cluster size");
  report.set_scale(scale);
  report.add_table("traffic", table);
  report.write();

  std::printf("\nreading: gossip protocols stay at O(1) messages per PM "
              "per round as the cluster grows; PABFD's manager polls all "
              "N PMs every round (plus migration commands), the "
              "scalability bottleneck the paper argues against.\n");
  return 0;
}
