// Ablation bench for GLAP's two central design choices (DESIGN.md §3):
//
//   1. the average/current state split — states and actions from running
//      averages with outcomes from current demands (use_average_state)
//      vs the "naive" current-only variant the paper argues against;
//   2. the aggregation phase — unified Q-values via gossip vs each PM
//      consolidating on its own locally trained tables.
//
// Reported per variant: overloaded PMs, active PMs, migrations, SLAV.
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header("Ablation — GLAP design choices", scale);

  const std::size_t size = scale.sizes.back();
  ThreadPool pool;

  struct Variant {
    const char* name;
    bool use_average;
    bool aggregate;
  };
  const std::vector<Variant> variants{
      {"full GLAP", true, true},
      {"no avg/current split", false, true},
      {"no aggregation", true, false},
  };

  std::vector<harness::ExperimentConfig> cells;
  for (std::size_t ratio : scale.ratios) {
    for (const Variant& v : variants) {
      harness::ExperimentConfig config;
      config.algorithm = harness::Algorithm::kGlap;
      config.pm_count = size;
      config.vm_ratio = ratio;
      apply_scale(config, scale);
      config.glap.use_average_state = v.use_average;
      if (!v.aggregate) {
        config.glap.learning_rounds += config.glap.aggregation_rounds;
        config.glap.aggregation_rounds = 0;
      }
      cells.push_back(config);
    }
  }

  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"cell", "variant", "overloaded(mean)",
                      "active(mean)", "migrations", "SLAV"});
  std::size_t idx = 0;
  for (std::size_t ratio : scale.ratios) {
    (void)ratio;
    for (const Variant& v : variants) {
      const auto& cell = results[idx++];
      table.add_row(
          {bench::cell_label(cell.config), v.name,
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_overloaded();
           })),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_active();
           })),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return static_cast<double>(r.total_migrations);
           }), 0),
           format_compact(cell.mean_of(
               [](const harness::RunResult& r) { return r.slav; }))});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report("ablation_glap",
                              "Ablation — GLAP design choices");
  report.set_scale(scale);
  report.add_table("variants", table);
  report.write();

  std::printf("\nexpected: full GLAP matches or beats both ablations on "
              "overloaded PMs — the average/current split is what lets "
              "the IN-table anticipate demand variability, and unified "
              "tables make π_in decisions consistent across PMs.\n");
  return 0;
}
