// Fig. 5 — convergence of Q-values across PMs.
//
// Reproduces the paper's cosine-similarity-per-cycle curves for the
// two-phase gossip learning protocol, in two variants per VM:PM ratio:
//   WOG: learning phase only (aggregation disabled) — similarity plateaus
//        well below 1 because every PM trains on local+neighbor profiles;
//   WG:  learning followed by gossip aggregation — similarity converges
//        rapidly to 1 (identical Q-values everywhere).
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header("Fig. 5 — Q-value convergence (WOG vs WG)",
                            scale);

  const std::size_t size = scale.sizes.back();
  ThreadPool pool;

  std::vector<harness::ExperimentConfig> cells;
  for (std::size_t ratio : scale.ratios) {
    for (bool with_gossip : {false, true}) {
      harness::ExperimentConfig config;
      config.algorithm = harness::Algorithm::kGlap;
      config.pm_count = size;
      config.vm_ratio = ratio;
      apply_scale(config, scale);
      config.rounds = 1;  // only the warmup (learning) window matters here
      config.track_convergence = true;
      config.convergence_pairs = 64;
      if (!with_gossip) {
        // WOG: all pre-run rounds are learning, none aggregate.
        config.glap.learning_rounds = config.warmup_rounds;
        config.glap.aggregation_rounds = 0;
      }
      cells.push_back(config);
    }
  }

  const auto results = harness::run_cells(cells, 1, pool);

  harness::BenchReport report("fig5_convergence",
                              "Fig. 5 — Q-value convergence (WOG vs WG)");
  report.set_scale(scale);
  ConsoleTable summary(
      {"ratio", "variant", "plateau", "final", "rounds-to-0.999"});

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& config = results[i].config;
    const auto& series = results[i].runs.front().convergence;
    const bool with_gossip = config.glap.aggregation_rounds > 0;
    std::printf("ratio %zu, %s (%zu PMs):\n", config.vm_ratio,
                with_gossip ? "WG (learning+aggregation)"
                            : "WOG (learning only)",
                config.pm_count);
    std::printf("  cycle:similarity ");
    const std::size_t step = std::max<std::size_t>(1, series.size() / 12);
    for (std::size_t c = 0; c < series.size(); c += step)
      std::printf(" %zu:%.3f", c + 1, series[c]);
    if (!series.empty())
      std::printf("  final:%.4f", series.back());
    std::printf("\n");

    // Plateau = mean over the last 10 warmup rounds; rounds-to-0.999 is
    // the first cycle at or above that similarity (WG hits it, WOG not).
    RunningStats tail;
    const std::size_t tail_from =
        series.size() > 10 ? series.size() - 10 : 0;
    for (std::size_t c = tail_from; c < series.size(); ++c)
      tail.add(series[c]);
    std::string to_unity = "-";
    for (std::size_t c = 0; c < series.size(); ++c)
      if (series[c] >= 0.999) {
        to_unity = std::to_string(c + 1);
        break;
      }
    summary.add_row({std::to_string(config.vm_ratio),
                     with_gossip ? "WG" : "WOG",
                     format_double(tail.mean(), 3),
                     series.empty() ? "-" : format_double(series.back(), 4),
                     to_unity});
  }

  report.add_table("summary", summary);
  report.write();

  std::printf(
      "\nexpected shape (paper): WOG plateaus well below 1 for every "
      "ratio; WG converges rapidly to 1.0 once aggregation starts.\n");
  return 0;
}
