// Substrate ablations:
//   1. GLAP over Cyclon vs Newscast — does the consolidation result
//      depend on which random-peer-sampling gossip layer carries it?
//      (It shouldn't: GLAP only needs uniform-ish live samples.)
//   2. PABFD with its three adaptive-threshold estimators (MAD — the
//      GLAP paper's configuration — vs IQR vs local regression).
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header("Ablation — overlay layer & PABFD estimator",
                            scale);

  const std::size_t size = scale.sizes.back();
  const std::size_t ratio = scale.ratios.size() > 1 ? scale.ratios[1]
                                                    : scale.ratios[0];
  ThreadPool pool;

  std::vector<harness::ExperimentConfig> cells;
  std::vector<std::string> labels;

  for (harness::OverlayKind overlay :
       {harness::OverlayKind::kCyclon, harness::OverlayKind::kNewscast}) {
    harness::ExperimentConfig config;
    config.algorithm = harness::Algorithm::kGlap;
    config.pm_count = size;
    config.vm_ratio = ratio;
    apply_scale(config, scale);
    config.overlay = overlay;
    cells.push_back(config);
    labels.push_back("GLAP / " + std::string(to_string(overlay)));
  }
  for (baselines::ThresholdEstimator est :
       {baselines::ThresholdEstimator::kMad,
        baselines::ThresholdEstimator::kIqr,
        baselines::ThresholdEstimator::kLr}) {
    harness::ExperimentConfig config;
    config.algorithm = harness::Algorithm::kPabfd;
    config.pm_count = size;
    config.vm_ratio = ratio;
    apply_scale(config, scale);
    config.pabfd.estimator = est;
    cells.push_back(config);
    labels.push_back("PABFD / " + std::string(to_string(est)));
  }

  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"variant", "overloaded(mean)", "active(mean)",
                      "migrations", "SLAV"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& cell = results[i];
    table.add_row(
        {labels[i],
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return r.mean_overloaded();
         })),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return r.mean_active();
         }), 1),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return static_cast<double>(r.total_migrations);
         }), 0),
         format_compact(cell.mean_of(
             [](const harness::RunResult& r) { return r.slav; }))});
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report("ablation_substrate",
                              "Ablation — overlay layer & PABFD estimator");
  report.set_scale(scale);
  report.add_table("substrate", table);
  report.write();

  std::printf("\nexpected: GLAP's numbers are overlay-agnostic (both "
              "layers provide uniform-ish live peer samples); PABFD's "
              "estimator shifts its aggressiveness — lower thresholds "
              "(more variance- or trend-sensitive estimators) evict "
              "more.\n");
  return 0;
}
