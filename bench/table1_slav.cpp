// Table I — the SLAV metric (SLAVO × SLALM) for every cluster size and
// workload ratio. The paper's shape: GLAP < EcoCloud < PABFD < GRMP in
// every cell, and SLAV grows with the workload ratio for every protocol.
#include "bench_util.hpp"

using namespace glap;
using bench::Algorithm;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header("Table I — SLAV per size and ratio", scale);

  ThreadPool pool;
  const auto cells = bench::build_cells(scale, bench::all_algorithms());
  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"cell", "GLAP", "EcoCloud", "GRMP", "PABFD"});
  for (std::size_t size : scale.sizes) {
    for (std::size_t ratio : scale.ratios) {
      std::vector<std::string> row{std::to_string(size) + "-" +
                                   std::to_string(ratio)};
      for (Algorithm algo : {Algorithm::kGlap, Algorithm::kEcoCloud,
                             Algorithm::kGrmp, Algorithm::kPabfd}) {
        for (const auto& cell : results) {
          if (cell.config.pm_count != size ||
              cell.config.vm_ratio != ratio ||
              cell.config.algorithm != algo)
            continue;
          row.push_back(format_compact(cell.mean_of(
              [](const harness::RunResult& r) { return r.slav; })));
        }
      }
      table.add_row(std::move(row));
    }
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nper-component means (SLAVO = overload time share, SLALM "
              "= migration degradation):\n");
  ConsoleTable parts({"cell", "algorithm", "SLAVO", "SLALM", "SLAV"});
  for (const auto& cell : results) {
    parts.add_row(
        {bench::cell_label(cell.config),
         std::string(to_string(cell.config.algorithm)),
         format_compact(cell.mean_of(
             [](const harness::RunResult& r) { return r.slavo; })),
         format_compact(cell.mean_of(
             [](const harness::RunResult& r) { return r.slalm; })),
         format_compact(cell.mean_of(
             [](const harness::RunResult& r) { return r.slav; }))});
  }
  std::fputs(parts.render().c_str(), stdout);

  harness::BenchReport report("table1_slav",
                              "Table I — SLAV per size and ratio");
  report.set_scale(scale);
  report.add_table("slav", table);
  report.add_table("components", parts);
  report.write();

  std::printf("\nexpected shape (paper): SLAV ordering GLAP < EcoCloud < "
              "PABFD < GRMP in each cell; SLAV grows with the ratio.\n");
  return 0;
}
