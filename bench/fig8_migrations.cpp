// Fig. 8 — the number of migrations per round (median, p10, p90), plus
// the run totals the reduction percentages are computed from.
#include "bench_util.hpp"

using namespace glap;
using bench::Algorithm;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header(
      "Fig. 8 — migrations per round (median, p10, p90) and totals", scale);

  ThreadPool pool;
  const auto cells = bench::build_cells(scale, bench::all_algorithms());
  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"cell", "algorithm", "median/rd", "p10", "p90",
                      "total(mean)"});
  for (const auto& cell : results) {
    const auto summary =
        cell.pooled_round_summary([](const harness::RunResult& r) {
          return r.migrations_per_round_series();
        });
    const double total = cell.mean_of([](const harness::RunResult& r) {
      return static_cast<double>(r.total_migrations);
    });
    table.add_row({bench::cell_label(cell.config),
                   std::string(to_string(cell.config.algorithm)),
                   format_double(summary.median, 1),
                   format_double(summary.p10, 1),
                   format_double(summary.p90, 1), format_double(total, 0)});
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report(
      "fig8_migrations",
      "Fig. 8 — migrations per round (median, p10, p90) and totals");
  report.set_scale(scale);
  report.add_table("migrations", table);

  const double paper_reduction[] = {23.0, 37.0, 70.0};
  ConsoleTable reductions({"vs", "paper", "measured"});
  std::printf("\nGLAP migration reduction vs each baseline (paper: 23%% / "
              "37%% / 70%% fewer than EcoCloud / GRMP / PABFD):\n");
  std::size_t b = 0;
  for (Algorithm baseline : {Algorithm::kEcoCloud, Algorithm::kGrmp,
                             Algorithm::kPabfd}) {
    double glap_sum = 0.0, base_sum = 0.0;
    for (const auto& cell : results) {
      const double total = cell.mean_of([](const harness::RunResult& r) {
        return static_cast<double>(r.total_migrations);
      });
      if (cell.config.algorithm == Algorithm::kGlap) glap_sum += total;
      if (cell.config.algorithm == baseline) base_sum += total;
    }
    const double reduction =
        base_sum > 0.0 ? 100.0 * (1.0 - glap_sum / base_sum) : 0.0;
    std::printf("  vs %-8s: %5.1f%% fewer migrations\n",
                std::string(to_string(baseline)).c_str(), reduction);
    reductions.add_row({std::string(to_string(baseline)),
                        "-" + format_double(paper_reduction[b], 0) + "%",
                        format_double(-reduction, 1) + "%"});
    ++b;
  }
  report.add_table("reductions", reductions);
  report.write();
  std::printf("\nexpected shape (paper): GLAP fewest migrations, PABFD by "
              "far the most; totals grow with the workload ratio.\n");
  return 0;
}
