// Future-work experiment (paper §VI): network-topology awareness.
//
// PMs sit in racks behind top-of-rack switches that only power down when
// the whole rack sleeps. Compares vanilla GLAP against the rack-aware
// variant (same-rack gossip affinity + drain-the-emptier-rack rule) on
// active racks, switch energy, and the SLA-relevant metrics — the
// rack-aware variant should retire strictly more switches at equal-ish
// consolidation quality.
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header(
      "Future work — rack-topology-aware consolidation", scale);

  const std::size_t size = scale.sizes.back();
  const std::size_t rack_size = 10;
  ThreadPool pool;

  struct Variant {
    const char* name;
    double affinity;
  };
  const std::vector<Variant> variants{
      {"GLAP (topology-blind)", 0.0},
      {"GLAP rack-aware (affinity 0.5)", 0.5},
      {"GLAP rack-aware (affinity 0.9)", 0.9},
  };

  std::vector<harness::ExperimentConfig> cells;
  for (std::size_t ratio : scale.ratios) {
    for (const Variant& v : variants) {
      harness::ExperimentConfig config;
      config.algorithm = harness::Algorithm::kGlap;
      config.pm_count = size;
      config.vm_ratio = ratio;
      apply_scale(config, scale);
      config.rack_size = rack_size;
      config.glap.rack_affinity = v.affinity;
      cells.push_back(config);
    }
  }

  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"cell", "variant", "active-racks(mean)",
                      "active-pms(mean)", "switch-energy(MJ)",
                      "overloaded(mean)", "migrations"});
  std::size_t idx = 0;
  for (std::size_t ratio : scale.ratios) {
    (void)ratio;
    for (const Variant& v : variants) {
      const auto& cell = results[idx++];
      table.add_row(
          {bench::cell_label(cell.config), v.name,
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_active_racks();
           }), 1),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_active();
           }), 1),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.switch_energy_j / 1e6;
           }), 2),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_overloaded();
           })),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return static_cast<double>(r.total_migrations);
           }), 0)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report(
      "topo_racks", "Future work — rack-topology-aware consolidation");
  report.set_scale(scale);
  report.add_table("racks", table);
  report.write();

  std::printf("\nexpected: moderate affinity (~0.5) retires the most "
              "racks/switches at a comparable active-PM count. Very high "
              "affinity backfires: emptying a rack requires *cross-rack* "
              "migrations, which near-exclusive same-rack gossip starves "
              "— the exploration/exploitation trade-off of topology-aware "
              "gossip.\n");
  return 0;
}
