// Per-phase engine profile (DESIGN.md §10.4) across the four algorithms
// at the scale's first (size, ratio) cell.
//
// Two tables land in results/profile_phases.json:
//
//   counts  — phase call counts. Deterministic: a pure function of
//             (config, seed), identical for the serial and wave-parallel
//             engines at any thread count, so EXPERIMENTS.md drift-checks
//             this table. The wave-only "select" phase is excluded.
//   wall    — every phase with wall-clock totals and ns/call. Wall time
//             is host-dependent; this table is reported but never
//             drift-checked.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "harness/runner.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header(
      "Engine phase profile — per-phase calls (deterministic) and wall "
      "time (host-dependent)",
      scale);

  ConsoleTable counts({"algorithm", "phase", "calls"});
  ConsoleTable wall(
      {"algorithm", "phase", "calls", "wall_ms", "ns_per_call"});

  for (harness::Algorithm algo : bench::all_algorithms()) {
    harness::ExperimentConfig config;
    config.algorithm = algo;
    config.pm_count = scale.sizes.front();
    config.vm_ratio = scale.ratios.front();
    apply_scale(config, scale);
    config.observability.profile = true;

    const harness::RunResult result = harness::run_experiment(config);
    const std::string name(to_string(algo));
    for (const auto& phase : result.profile) {
      if (phase.deterministic)
        counts.add_row({name, phase.label, std::to_string(phase.calls)});
      const double ms = static_cast<double>(phase.wall_ns) / 1e6;
      const double per_call =
          phase.calls > 0
              ? static_cast<double>(phase.wall_ns) /
                    static_cast<double>(phase.calls)
              : 0.0;
      wall.add_row({name, phase.label, std::to_string(phase.calls),
                    format_double(ms, 2), format_double(per_call, 1)});
    }
  }

  std::printf("deterministic phase call counts:\n%s\n",
              counts.render().c_str());
  std::printf("wall-clock (host-dependent):\n%s",
              wall.render().c_str());

  harness::BenchReport report(
      "profile_phases",
      "Engine phase profile — deterministic call counts + wall time");
  report.set_scale(scale);
  report.add_table("counts", counts);
  report.add_table("wall", wall);
  report.write();
  return 0;
}
