// Trace-overhead smoke: the observability layer must be (near) free when
// it is off, and cheap when it is on.
//
// Checks 1-2 run on the BENCH_engine.json glap_150pm shape (150 PMs,
// 200 warmup + 150 eval rounds, serial engine); check 3 runs at 1000 PMs:
//
//   1. enabled-cost gate (hard): rounds/sec with metrics + full JSONL
//      tracing enabled must stay above --min-on-ratio (default 0.5) of
//      the tracing-off throughput of the same binary;
//   2. reference gate: tracing-off rounds/sec is compared against the
//      committed glap_150pm_serial_rounds_per_sec in BENCH_engine.json
//      (or --reference <path>). Throughput below --min-ref-ratio
//      (default 0.5, generous because the recorded number is
//      host-dependent) fails; a missing reference file only warns.
//   3. metrics-only gate (hard): at 1000 PMs, metrics ON with tracing OFF
//      must stay above --min-metrics-ratio (default 0.9) of metrics OFF —
//      the registry's per-shard counters are the only instrumentation on
//      that path, and they must cost no more than a few percent.
//   4. scale gate (hard): at 10k PMs on the event engine with quiescence
//      (the CI scale-smoke shape), a sampled GTB trace (5% shuffle keep,
//      DESIGN.md §10.6) must come out at least --min-size-ratio (default
//      10) x smaller than the full JSONL trace of the same run, and its
//      throughput must stay above --min-sampled-ratio (default 0.95) of
//      tracing-off — compact sampled tracing is near-free at scale.
//
// All measured numbers land in results/trace_overhead.json.
//
// scripts/ci.sh runs this as its trace-overhead stage:
//
//   build-release/bench/trace_overhead --reference BENCH_engine.json
//
// glap-lint: allow-file(wall-clock): this bench exists to measure wall-
// clock throughput ratios; timings are compared and reported, never fed
// back into simulation state.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/report.hpp"
#include "harness/runner.hpp"

namespace {

using namespace glap;
using Clock = std::chrono::steady_clock;

harness::ExperimentConfig overhead_config() {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = 150;
  config.warmup_rounds = 200;
  config.rounds = 150;
  config.fit_glap_phases_to_warmup();
  return config;
}

/// Best-of-`reps` rounds/sec; `sink` != nullptr enables metrics + tracing.
double rounds_per_sec(std::ostringstream* sink, int reps) {
  harness::ExperimentConfig config = overhead_config();
  const double total_rounds =
      static_cast<double>(config.warmup_rounds + config.rounds);
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    if (sink != nullptr) {
      sink->str({});
      config.observability.metrics = true;
      config.observability.trace_sink = sink;
    }
    const auto start = Clock::now();
    const auto result = harness::run_experiment(config);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (result.rounds.size() != config.rounds) std::abort();
    best = std::max(best, total_rounds / elapsed);
  }
  return best;
}

/// Best-of-`reps` rounds/sec at 1000 PMs with tracing off throughout;
/// `metrics_on` toggles the registry (the only instrumentation measured).
double metrics_rounds_per_sec(bool metrics_on, int reps) {
  harness::ExperimentConfig config = overhead_config();
  config.pm_count = 1000;
  config.warmup_rounds = 80;
  config.rounds = 60;
  config.fit_glap_phases_to_warmup();
  config.observability.metrics = metrics_on;
  const double total_rounds =
      static_cast<double>(config.warmup_rounds + config.rounds);
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    const auto result = harness::run_experiment(config);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (result.rounds.size() != config.rounds) std::abort();
    best = std::max(best, total_rounds / elapsed);
  }
  return best;
}

/// One 10k-PM event-engine measurement (the CI scale-smoke shape).
struct ScaleRun {
  double rps = 0.0;
  std::size_t trace_bytes = 0;
};

enum class ScaleMode { kOff, kFullJsonl, kSampledGtb };

ScaleRun scale_run(ScaleMode mode, int reps) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = 10000;
  config.warmup_rounds = 40;
  config.rounds = 30;
  config.event_engine = true;
  config.glap.quiescence.enabled = true;
  config.glap.quiescence.demand_epsilon = 0.15;
  config.glap.quiescence.idle_rounds = 8;
  config.fit_glap_phases_to_warmup();
  const double total_rounds =
      static_cast<double>(config.warmup_rounds + config.rounds);
  std::ostringstream sink;
  if (mode != ScaleMode::kOff) {
    config.observability.trace_sink = &sink;
    if (mode == ScaleMode::kSampledGtb) {
      config.observability.trace_format = trace::Format::kGtb;
      config.observability.trace_sample_shuffle = 0.05;
      config.observability.trace_sample_net = 0.05;
    }
  }
  ScaleRun best;
  for (int rep = 0; rep < reps; ++rep) {
    sink.str({});
    const auto start = Clock::now();
    const auto result = harness::run_experiment(config);
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (result.rounds.size() != config.rounds) std::abort();
    best.rps = std::max(best.rps, total_rounds / elapsed);
    best.trace_bytes = sink.str().size();
  }
  return best;
}

/// Extracts `"key": <number>` from a JSON file by string search — enough
/// for the flat committed baseline records.
bool find_number(const std::string& path, const char* key, double* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  return std::sscanf(text.c_str() + pos + needle.size(), " %lf", out) == 1;
}

double arg_ratio(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::string reference;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--reference") == 0) reference = argv[i + 1];
  const double min_on_ratio = arg_ratio(argc, argv, "--min-on-ratio", 0.5);
  const double min_ref_ratio = arg_ratio(argc, argv, "--min-ref-ratio", 0.5);
  const double min_metrics_ratio =
      arg_ratio(argc, argv, "--min-metrics-ratio", 0.9);

  std::fprintf(stderr, "[trace_overhead] tracing off (3 runs)...\n");
  const double off = rounds_per_sec(nullptr, 3);
  std::fprintf(stderr, "[trace_overhead] metrics + tracing on (3 runs)...\n");
  std::ostringstream sink;
  const double on = rounds_per_sec(&sink, 3);

  std::printf("[trace_overhead] off: %.2f rounds/sec, on: %.2f rounds/sec "
              "(on/off %.2f), trace bytes/run: %zu\n",
              off, on, off > 0 ? on / off : 0.0, sink.str().size());

  bool ok = true;
  if (on < min_on_ratio * off) {
    std::fprintf(stderr,
                 "[trace_overhead] FAIL: enabled tracing costs too much "
                 "(%.2f < %.2f x %.2f)\n",
                 on, min_on_ratio, off);
    ok = false;
  }

  std::fprintf(stderr,
               "[trace_overhead] 1000 PMs, metrics off (3 runs)...\n");
  const double metrics_off = metrics_rounds_per_sec(false, 3);
  std::fprintf(stderr,
               "[trace_overhead] 1000 PMs, metrics on (3 runs)...\n");
  const double metrics_on = metrics_rounds_per_sec(true, 3);
  std::printf("[trace_overhead] 1000 PMs metrics off: %.2f rounds/sec, "
              "on: %.2f rounds/sec (on/off %.2f)\n",
              metrics_off, metrics_on,
              metrics_off > 0 ? metrics_on / metrics_off : 0.0);
  if (metrics_on < min_metrics_ratio * metrics_off) {
    std::fprintf(stderr,
                 "[trace_overhead] FAIL: metrics alone cost too much at "
                 "1000 PMs (%.2f < %.2f x %.2f)\n",
                 metrics_on, min_metrics_ratio, metrics_off);
    ok = false;
  }

  const double min_sampled_ratio =
      arg_ratio(argc, argv, "--min-sampled-ratio", 0.95);
  const double min_size_ratio = arg_ratio(argc, argv, "--min-size-ratio", 10.0);
  std::fprintf(stderr, "[trace_overhead] 10k PMs, tracing off (2 runs)...\n");
  const ScaleRun scale_off = scale_run(ScaleMode::kOff, 2);
  std::fprintf(stderr, "[trace_overhead] 10k PMs, full JSONL (1 run)...\n");
  const ScaleRun scale_full = scale_run(ScaleMode::kFullJsonl, 1);
  std::fprintf(stderr,
               "[trace_overhead] 10k PMs, sampled GTB (2 runs)...\n");
  const ScaleRun scale_sampled = scale_run(ScaleMode::kSampledGtb, 2);
  std::printf(
      "[trace_overhead] 10k PMs off: %.2f rounds/sec; full JSONL %zu "
      "bytes; sampled GTB %.2f rounds/sec, %zu bytes (%.1fx smaller, "
      "sampled/off %.2f)\n",
      scale_off.rps, scale_full.trace_bytes, scale_sampled.rps,
      scale_sampled.trace_bytes,
      scale_sampled.trace_bytes > 0
          ? static_cast<double>(scale_full.trace_bytes) /
                static_cast<double>(scale_sampled.trace_bytes)
          : 0.0,
      scale_off.rps > 0 ? scale_sampled.rps / scale_off.rps : 0.0);
  if (static_cast<double>(scale_sampled.trace_bytes) * min_size_ratio >
      static_cast<double>(scale_full.trace_bytes)) {
    std::fprintf(stderr,
                 "[trace_overhead] FAIL: sampled GTB trace is not %.0fx "
                 "smaller than full JSONL (%zu x %.0f > %zu)\n",
                 min_size_ratio, scale_sampled.trace_bytes, min_size_ratio,
                 scale_full.trace_bytes);
    ok = false;
  }
  if (scale_sampled.rps < min_sampled_ratio * scale_off.rps) {
    std::fprintf(stderr,
                 "[trace_overhead] FAIL: sampled GTB tracing costs more "
                 "than %.0f%% at 10k PMs (%.2f < %.2f x %.2f)\n",
                 100.0 * (1.0 - min_sampled_ratio), scale_sampled.rps,
                 min_sampled_ratio, scale_off.rps);
    ok = false;
  }

  double recorded = 0.0;
  if (reference.empty()) {
    std::fprintf(stderr, "[trace_overhead] no --reference given; skipping "
                         "baseline comparison\n");
  } else if (!find_number(reference, "glap_150pm_serial_rounds_per_sec",
                          &recorded)) {
    std::fprintf(stderr,
                 "[trace_overhead] warning: cannot read "
                 "glap_150pm_serial_rounds_per_sec from %s; skipping\n",
                 reference.c_str());
  } else {
    std::printf("[trace_overhead] recorded baseline: %.2f rounds/sec "
                "(off/recorded %.2f)\n",
                recorded, recorded > 0 ? off / recorded : 0.0);
    if (off < min_ref_ratio * recorded) {
      std::fprintf(stderr,
                   "[trace_overhead] FAIL: tracing-off throughput fell "
                   "below %.0f%% of the recorded baseline (%.2f < %.2f)\n",
                   100.0 * min_ref_ratio, off, min_ref_ratio * recorded);
      ok = false;
    }
  }

  harness::BenchReport report(
      "trace_overhead",
      "Trace overhead — rounds/sec off vs on (host-dependent)");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", off);
  report.add_headline("rounds_per_sec_off", buf);
  std::snprintf(buf, sizeof(buf), "%.2f", on);
  report.add_headline("rounds_per_sec_on", buf);
  std::snprintf(buf, sizeof(buf), "%.2f", off > 0 ? on / off : 0.0);
  report.add_headline("on_off_ratio", buf);
  std::snprintf(buf, sizeof(buf), "%.2f", metrics_off);
  report.add_headline("rounds_per_sec_1000pm_metrics_off", buf);
  std::snprintf(buf, sizeof(buf), "%.2f", metrics_on);
  report.add_headline("rounds_per_sec_1000pm_metrics_on", buf);
  std::snprintf(buf, sizeof(buf), "%.2f",
                metrics_off > 0 ? metrics_on / metrics_off : 0.0);
  report.add_headline("metrics_on_off_ratio_1000pm", buf);
  report.add_headline("status", ok ? "OK" : "FAIL");
  report.write();

  return ok ? 0 : 1;
}
