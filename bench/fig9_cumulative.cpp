// Fig. 9 — cumulative number of migrations over the day, per workload
// ratio, at the largest configured cluster size. The paper's shape: the
// three distributed algorithms front-load their migrations (concave
// curves flattening after the initial consolidation burst) while PABFD
// grows almost linearly for the whole day.
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header("Fig. 9 — cumulative migrations over time",
                            scale);

  const std::size_t size = scale.sizes.back();
  ThreadPool pool;

  harness::BenchScale one_size = scale;
  one_size.sizes = {size};
  const auto cells = bench::build_cells(one_size, bench::all_algorithms());
  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  // Checkpoints across the evaluation window; one merged table with a
  // ratio column mirrors the per-ratio console output in the report.
  const std::size_t rounds = results.front().runs.front().rounds.size();
  const std::size_t checkpoints = 8;
  ConsoleTable merged([&] {
    std::vector<std::string> header{"ratio", "algorithm"};
    for (std::size_t c = 1; c <= checkpoints; ++c)
      header.push_back("r" + std::to_string(c * rounds / checkpoints));
    return header;
  }());

  for (std::size_t ratio_idx = 0; ratio_idx < scale.ratios.size();
       ++ratio_idx) {
    std::printf("-- %zu PMs, ratio %zu --\n", size,
                scale.ratios[ratio_idx]);
    ConsoleTable table([&] {
      std::vector<std::string> header{"algorithm"};
      for (std::size_t c = 1; c <= checkpoints; ++c)
        header.push_back("r" +
                         std::to_string(c * rounds / checkpoints));
      return header;
    }());
    for (const auto& cell : results) {
      if (cell.config.vm_ratio != scale.ratios[ratio_idx]) continue;
      std::vector<std::string> row{
          std::string(to_string(cell.config.algorithm))};
      for (std::size_t c = 1; c <= checkpoints; ++c) {
        const std::size_t round = c * rounds / checkpoints - 1;
        RunningStats cum;
        for (const auto& run : cell.runs)
          cum.add(static_cast<double>(run.rounds[round].migrations_cum));
        row.push_back(format_double(cum.mean(), 0));
      }
      std::vector<std::string> merged_row{
          std::to_string(scale.ratios[ratio_idx])};
      merged_row.insert(merged_row.end(), row.begin(), row.end());
      merged.add_row(std::move(merged_row));
      table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  harness::BenchReport report("fig9_cumulative",
                              "Fig. 9 — cumulative migrations over time");
  report.set_scale(one_size);
  report.add_table("checkpoints", merged);
  report.write();
  std::printf("expected shape (paper): distributed algorithms (GLAP, "
              "EcoCloud, GRMP) are concave — most migrations early; PABFD "
              "keeps migrating at a near-constant rate (linear).\n");
  return 0;
}
