// Shared plumbing for the figure/table reproduction benches: sweep
// construction over (algorithm × size × ratio), execution on the thread
// pool, and a common header that records the run configuration.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "harness/bench_scale.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"

namespace glap::bench {

using harness::Algorithm;

inline const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> algos{
      Algorithm::kGlap, Algorithm::kEcoCloud, Algorithm::kGrmp,
      Algorithm::kPabfd};
  return algos;
}

/// Builds one cell per (size × ratio × algorithm), ordered that way.
inline std::vector<harness::ExperimentConfig> build_cells(
    const harness::BenchScale& scale,
    const std::vector<Algorithm>& algorithms) {
  std::vector<harness::ExperimentConfig> cells;
  for (std::size_t size : scale.sizes)
    for (std::size_t ratio : scale.ratios)
      for (Algorithm algo : algorithms) {
        harness::ExperimentConfig config;
        config.algorithm = algo;
        config.pm_count = size;
        config.vm_ratio = ratio;
        apply_scale(config, scale);
        cells.push_back(config);
      }
  return cells;
}

inline void print_bench_header(const char* title,
                               const harness::BenchScale& scale) {
  std::printf("=== %s ===\n", title);
  std::printf("scale: sizes={");
  for (std::size_t i = 0; i < scale.sizes.size(); ++i)
    std::printf("%s%zu", i ? "," : "", scale.sizes[i]);
  std::printf("} ratios={");
  for (std::size_t i = 0; i < scale.ratios.size(); ++i)
    std::printf("%s%zu", i ? "," : "", scale.ratios[i]);
  std::printf("} reps=%zu rounds=%u warmup=%u", scale.repetitions,
              scale.rounds, scale.warmup_rounds);
  std::printf("  (set GLAP_BENCH_SCALE=full for paper-size clusters)\n\n");
}

inline std::string cell_label(const harness::ExperimentConfig& config) {
  return std::to_string(config.pm_count) + "-" +
         std::to_string(config.vm_ratio);
}

}  // namespace glap::bench
