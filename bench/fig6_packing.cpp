// Fig. 6 — packing aggressiveness vs SLA cost.
//
// For every (size, ratio): mean active PMs per round, the BFD oracle
// packing of the final round (the paper's "baseline packing without any
// SLA violation"), and the mean fraction of active PMs that are
// overloaded. The paper's shape: GRMP and PABFD switch off PMs at or
// below the baseline but overload a large share of the survivors; GLAP
// and EcoCloud stay slightly above the baseline with far fewer
// overloaded PMs (GLAP lowest).
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header(
      "Fig. 6 — active PMs vs BFD baseline, overloaded fraction", scale);

  ThreadPool pool;
  const auto cells = bench::build_cells(scale, bench::all_algorithms());
  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"cell", "algorithm", "active(mean)", "bfd-oracle",
                      "active/oracle", "overloaded/active"});
  for (const auto& cell : results) {
    const double active = cell.mean_of(
        [](const harness::RunResult& r) { return r.mean_active(); });
    const double oracle = cell.mean_of([](const harness::RunResult& r) {
      return static_cast<double>(r.final_bfd_bins);
    });
    const double frac = cell.mean_of([](const harness::RunResult& r) {
      return r.mean_overloaded_fraction();
    });
    table.add_row({bench::cell_label(cell.config),
                   std::string(to_string(cell.config.algorithm)),
                   format_double(active, 1), format_double(oracle, 1),
                   format_double(oracle > 0 ? active / oracle : 0.0, 2),
                   format_double(frac, 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report(
      "fig6_packing", "Fig. 6 — active PMs vs BFD baseline");
  report.set_scale(scale);
  report.add_table("packing", table);
  report.write();

  std::printf(
      "\nexpected shape (paper): overloaded/active ordering GLAP < "
      "EcoCloud < PABFD < GRMP; GRMP and PABFD pack at/below the oracle, "
      "GLAP and EcoCloud slightly above it.\n");
  return 0;
}
