// Fig. 10 — energy overhead of migrations (paper Eq. 3) per (size,
// ratio, algorithm), plus total PM energy for context. The paper's
// shape: PABFD consumes by far the most migration energy, GLAP the
// least; more migrations do not always mean more energy (τ depends on
// the VM's resident memory at migration time).
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header("Fig. 10 — migration energy overhead (Eq. 3)",
                            scale);

  ThreadPool pool;
  const auto cells = bench::build_cells(scale, bench::all_algorithms());
  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"cell", "algorithm", "mig-energy(kJ)", "migrations",
                      "J/migration", "pm-energy(MJ)"});
  for (const auto& cell : results) {
    const double energy = cell.mean_of([](const harness::RunResult& r) {
      return r.migration_energy_j;
    });
    const double migs = cell.mean_of([](const harness::RunResult& r) {
      return static_cast<double>(r.total_migrations);
    });
    const double total = cell.mean_of([](const harness::RunResult& r) {
      return r.total_energy_j;
    });
    table.add_row({bench::cell_label(cell.config),
                   std::string(to_string(cell.config.algorithm)),
                   format_double(energy / 1000.0, 2),
                   format_double(migs, 0),
                   format_double(migs > 0 ? energy / migs : 0.0, 1),
                   format_double(total / 1e6, 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report(
      "fig10_energy", "Fig. 10 — migration energy overhead (Eq. 3)");
  report.set_scale(scale);
  report.add_table("energy", table);
  report.write();

  std::printf("\nexpected shape (paper): migration-energy ordering GLAP "
              "lowest, PABFD highest; energy tracks migration count but "
              "not proportionally (τ varies with resident memory).\n");
  return 0;
}
