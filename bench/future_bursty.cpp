// Future-work experiment (paper §VI): "we would like to evaluate our
// work under bursty workload patterns."
//
// Sweeps the bursty-archetype weight of the workload ensemble from the
// default mix to an almost-entirely-bursty cluster and reports how each
// policy's overload count and migration volume degrade. The interesting
// question the paper poses: does GLAP's learned acceptance policy keep
// its edge when bursts dominate, or does the average/current split lose
// its predictive power?
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header(
      "Future work — increasing workload burstiness", scale);

  const std::size_t size = scale.sizes.back();
  const std::size_t ratio = scale.ratios.size() > 1 ? scale.ratios[1]
                                                    : scale.ratios[0];
  ThreadPool pool;

  struct BurstMix {
    const char* name;
    double w_bursty;
    double w_spike;
  };
  const std::vector<BurstMix> mixes{
      {"default mix", 0.25, 0.10},
      {"bursty-heavy", 0.50, 0.20},
      {"almost all bursty", 0.70, 0.25},
  };

  std::vector<harness::ExperimentConfig> cells;
  for (const BurstMix& mix : mixes) {
    for (bench::Algorithm algo : bench::all_algorithms()) {
      harness::ExperimentConfig config;
      config.algorithm = algo;
      config.pm_count = size;
      config.vm_ratio = ratio;
      apply_scale(config, scale);
      const double rest = 1.0 - mix.w_bursty - mix.w_spike;
      config.workload.w_bursty = mix.w_bursty;
      config.workload.w_spike = mix.w_spike;
      config.workload.w_stable = rest * 0.25;
      config.workload.w_diurnal = rest * 0.375;
      config.workload.w_random_walk = rest * 0.375;
      cells.push_back(config);
    }
  }

  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"workload", "algorithm", "overloaded(mean)",
                      "active(mean)", "migrations", "SLAV"});
  std::size_t idx = 0;
  for (const BurstMix& mix : mixes) {
    for (bench::Algorithm algo : bench::all_algorithms()) {
      (void)algo;
      const auto& cell = results[idx++];
      table.add_row(
          {mix.name, std::string(to_string(cell.config.algorithm)),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_overloaded();
           })),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_active();
           }), 1),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return static_cast<double>(r.total_migrations);
           }), 0),
           format_compact(cell.mean_of(
               [](const harness::RunResult& r) { return r.slav; }))});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report(
      "future_bursty", "Future work — increasing workload burstiness");
  report.set_scale(scale);
  report.add_table("burstiness", table);
  report.write();

  std::printf("\nreading: every policy overloads more as bursts dominate; "
              "the question is whether GLAP's relative advantage (lowest "
              "overloads) survives — the learned IN-table keys on the "
              "avg/current gap that bursty VMs exhibit.\n");
  return 0;
}
