// Churn experiment: consolidation under VM arrivals/departures — the
// operating regime the paper's learning re-trigger policy (§IV-B) was
// designed for. Compares all four policies under increasing churn and
// runs GLAP with the re-learning oracle on vs off (ablation of the
// "learning runs as required by a predefined policy" mechanism).
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header("Churn — consolidation under VM churn", scale);

  const std::size_t size = scale.sizes.back();
  const std::size_t ratio = scale.ratios.size() > 1 ? scale.ratios[1]
                                                    : scale.ratios[0];
  ThreadPool pool;

  struct ChurnLevel {
    const char* name;
    double departure;
    double arrival;
  };
  const std::vector<ChurnLevel> levels{
      {"no churn", 0.0, 0.0},
      {"moderate churn", 0.005, 0.02},
      {"heavy churn", 0.02, 0.08},
  };

  auto base_config = [&](bench::Algorithm algo, const ChurnLevel& level) {
    harness::ExperimentConfig config;
    config.algorithm = algo;
    config.pm_count = size;
    config.vm_ratio = ratio;
    apply_scale(config, scale);
    config.churn.enabled = level.departure > 0.0 || level.arrival > 0.0;
    config.churn.departure_prob = level.departure;
    config.churn.arrival_prob = level.arrival;
    config.churn.initial_placed_fraction = 0.8;
    config.churn.relearn_min_interval = 40;
    config.churn.relearn_learning_rounds = 20;
    config.churn.relearn_aggregation_rounds = 10;
    return config;
  };

  std::vector<harness::ExperimentConfig> cells;
  for (const ChurnLevel& level : levels) {
    for (bench::Algorithm algo : bench::all_algorithms())
      cells.push_back(base_config(algo, level));
    // GLAP ablation: oracle disabled.
    auto no_relearn = base_config(bench::Algorithm::kGlap, level);
    no_relearn.churn.glap_relearn = false;
    cells.push_back(no_relearn);
  }

  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"churn", "algorithm", "overloaded(mean)",
                      "active(mean)", "migrations", "relearns", "SLAV"});
  std::size_t idx = 0;
  for (const ChurnLevel& level : levels) {
    for (std::size_t a = 0; a < bench::all_algorithms().size() + 1; ++a) {
      const auto& cell = results[idx++];
      const bool is_ablation = a == bench::all_algorithms().size();
      std::string name = std::string(to_string(cell.config.algorithm));
      if (is_ablation) name += " (no relearn)";
      table.add_row(
          {level.name, name,
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_overloaded();
           })),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_active();
           }), 1),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return static_cast<double>(r.total_migrations);
           }), 0),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return static_cast<double>(r.relearn_triggers);
           }), 1),
           format_compact(cell.mean_of(
               [](const harness::RunResult& r) { return r.slav; }))});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report("churn_dynamics",
                              "Churn — consolidation under VM churn");
  report.set_scale(scale);
  report.add_table("churn", table);
  report.write();

  std::printf("\nreading: churn stresses every policy (arrivals land by "
              "allocation, not by learned risk); GLAP's re-learning "
              "oracle refreshes the Q-tables as the workload population "
              "shifts — compare the GLAP rows against 'no relearn'.\n");
  return 0;
}
