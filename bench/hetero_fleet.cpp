// Heterogeneous-fleet experiment: a mixed G4/G5 server fleet hosting a
// mix of VM sizes (the comparator work's testbed shape [10]). Checks
// whether the paper's orderings survive heterogeneity and shows PABFD's
// power-aware placement at work (it is the only policy whose placement
// objective sees the differing power models).
#include "bench_util.hpp"

using namespace glap;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header(
      "Heterogeneous fleet — mixed G4/G5 PMs, mixed VM sizes", scale);

  const std::size_t size = scale.sizes.back();
  ThreadPool pool;

  std::vector<harness::ExperimentConfig> cells;
  for (std::size_t ratio : scale.ratios) {
    // Mixed VM sizes raise the average allocation ~30%; ratio 4 would
    // exceed the fleet's nominal capacity (no admission controller would
    // accept it), so the heterogeneous sweep stops at ratio 3.
    if (ratio > 3) continue;
    for (bench::Algorithm algo : bench::all_algorithms()) {
      harness::ExperimentConfig config;
      config.algorithm = algo;
      config.pm_count = size;
      config.vm_ratio = ratio;
      apply_scale(config, scale);
      config.fleet.pm_classes = {{cloud::hp_proliant_ml110_g5(), 0.5},
                                 {cloud::hp_proliant_ml110_g4(), 0.5}};
      config.fleet.vm_classes = {{cloud::ec2_micro(), 0.8},
                                 {cloud::ec2_small(), 0.2}};
      cells.push_back(config);
    }
  }

  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"cell", "algorithm", "overloaded(mean)",
                      "active(mean)", "migrations", "pm-energy(MJ)",
                      "SLAV"});
  for (const auto& cell : results) {
    table.add_row(
        {bench::cell_label(cell.config),
         std::string(to_string(cell.config.algorithm)),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return r.mean_overloaded();
         })),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return r.mean_active();
         }), 1),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return static_cast<double>(r.total_migrations);
         }), 0),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return r.total_energy_j / 1e6;
         }), 2),
         format_compact(cell.mean_of(
             [](const harness::RunResult& r) { return r.slav; }))});
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report(
      "hetero_fleet", "Heterogeneous fleet — mixed G4/G5 PMs");
  report.set_scale(scale);
  report.add_table("fleet", table);
  report.write();

  std::printf("\nreading: the homogeneous-fleet orderings (overloads "
              "GLAP < EcoCloud < PABFD < GRMP) should survive "
              "heterogeneity; GLAP's per-PM states adapt naturally "
              "because each PM classifies utilization against its own "
              "capacity.\n");
  return 0;
}
