// Parallel-engine smoke check: runs a reduced 150-PM GLAP experiment on
// the serial reference engine and on the wave-parallel engine with 4
// threads, and exits non-zero unless every aggregate matches bit-for-bit.
//
// This is the multi-threaded workload the ThreadSanitizer CI stage drives
// (see scripts/ci.sh); it doubles as a quick standalone determinism probe:
//
//   build/bench/parallel_smoke
#include <cstdio>
#include <string>

#include "harness/report.hpp"
#include "harness/runner.hpp"

namespace {

using namespace glap;

harness::ExperimentConfig smoke_config() {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = 150;
  config.vm_ratio = 2;
  config.warmup_rounds = 80;
  config.rounds = 60;
  config.seed = 11;
  config.fit_glap_phases_to_warmup();
  return config;
}

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "[parallel_smoke] MISMATCH: %s\n", what);
  return ok;
}

}  // namespace

int main() {
  harness::ExperimentConfig config = smoke_config();

  std::fprintf(stderr, "[parallel_smoke] serial reference run...\n");
  const harness::RunResult serial = harness::run_experiment(config);

  std::fprintf(stderr, "[parallel_smoke] parallel run (4 threads)...\n");
  config.engine_threads = 4;
  const harness::RunResult parallel = harness::run_experiment(config);

  bool ok = true;
  ok &= check(serial.total_migrations == parallel.total_migrations,
              "total_migrations");
  ok &= check(serial.migration_energy_j == parallel.migration_energy_j,
              "migration_energy_j");
  ok &= check(serial.total_energy_j == parallel.total_energy_j,
              "total_energy_j");
  ok &= check(serial.slav == parallel.slav, "slav");
  ok &= check(serial.messages == parallel.messages, "messages");
  ok &= check(serial.bytes == parallel.bytes, "bytes");
  ok &= check(serial.final_active_pms == parallel.final_active_pms,
              "final_active_pms");
  ok &= check(serial.rounds.size() == parallel.rounds.size(), "round count");
  if (ok) {
    for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
      ok &= serial.rounds[r].active_pms == parallel.rounds[r].active_pms &&
            serial.rounds[r].migrations_cum ==
                parallel.rounds[r].migrations_cum;
      if (!ok) {
        std::fprintf(stderr, "[parallel_smoke] MISMATCH at round %zu\n", r);
        break;
      }
    }
  }

  harness::BenchReport report(
      "parallel_smoke",
      "Parallel-engine smoke — serial vs 4-thread bit-identity");
  report.add_headline("status", ok ? "OK" : "MISMATCH");
  report.add_headline("total_migrations",
                      std::to_string(serial.total_migrations));
  report.add_headline("messages", std::to_string(serial.messages));
  report.write();

  if (!ok) return 1;
  std::printf(
      "[parallel_smoke] OK: serial and 4-thread runs are bit-identical "
      "(%llu migrations, %llu messages)\n",
      static_cast<unsigned long long>(serial.total_migrations),
      static_cast<unsigned long long>(serial.messages));
  return 0;
}
