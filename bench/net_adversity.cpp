// Convergence under network adversity (DESIGN.md §13).
//
// Sweeps the gossip protocols across network-model variants — the ideal
// (instantaneous, lossless) transport the rest of the suite uses, the
// modeled two-tier fabric at healthy defaults, and the same fabric with
// 0.1% / 1% / 5% per-leg message loss — and reports whether each protocol
// still consolidates. Gossip is redundant by construction, so GLAP should
// degrade gracefully: mild loss costs a little convergence speed, not the
// packing itself. The table feeds the "Convergence under network
// adversity" section of EXPERIMENTS.md via results/net_adversity.json.
#include "bench_util.hpp"

using namespace glap;

namespace {

struct Variant {
  const char* name;
  bool enabled;
  double loss;
};

const std::vector<Variant>& variants() {
  static const std::vector<Variant> v{
      {"ideal (no model)", false, 0.0},
      {"modeled, lossless", true, 0.0},
      {"0.1% loss", true, 0.001},
      {"1% loss", true, 0.01},
      {"5% loss", true, 0.05},
  };
  return v;
}

}  // namespace

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header("Convergence under network adversity", scale);

  const std::size_t size = scale.sizes.back();
  const std::size_t ratio = 3;
  const std::vector<harness::Algorithm> algorithms{
      harness::Algorithm::kGlap, harness::Algorithm::kGrmp,
      harness::Algorithm::kEcoCloud};
  ThreadPool pool;

  std::vector<harness::ExperimentConfig> cells;
  for (harness::Algorithm algo : algorithms) {
    for (const Variant& v : variants()) {
      harness::ExperimentConfig config;
      config.algorithm = algo;
      config.pm_count = size;
      config.vm_ratio = ratio;
      apply_scale(config, scale);
      config.network.enabled = v.enabled;
      config.network.loss_rate = v.loss;
      cells.push_back(config);
    }
  }

  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table({"algorithm", "network", "active-pms(mean)",
                      "final-active", "overloaded(mean)", "migrations",
                      "delivered%", "dropped(loss)"});
  std::size_t idx = 0;
  for (harness::Algorithm algo : algorithms) {
    for (const Variant& v : variants()) {
      const auto& cell = results[idx++];
      const double sends =
          cell.mean_of([](const harness::RunResult& r) {
            return static_cast<double>(r.net_sends);
          });
      const double delivered =
          cell.mean_of([](const harness::RunResult& r) {
            return static_cast<double>(r.net_delivered);
          });
      table.add_row(
          {std::string(to_string(algo)), v.name,
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_active();
           }), 1),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return static_cast<double>(r.final_active_pms);
           }), 1),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return r.mean_overloaded();
           })),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return static_cast<double>(r.total_migrations);
           }), 0),
           sends > 0.0 ? format_double(100.0 * delivered / sends, 2)
                       : std::string("n/a"),
           format_double(cell.mean_of([](const harness::RunResult& r) {
             return static_cast<double>(r.net_dropped_loss);
           }), 0)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // Headline: how much packing quality GLAP gives up at 1% loss, as a
  // percentage of its loss-free mean active-PM footprint.
  const double glap_clean =
      results[0].mean_of([](const harness::RunResult& r) {
        return r.mean_active();
      });
  const double glap_lossy =
      results[3].mean_of([](const harness::RunResult& r) {
        return r.mean_active();
      });
  harness::BenchReport report("net_adversity",
                              "Convergence under network adversity");
  report.set_scale(scale);
  report.add_table("adversity", table);
  report.add_headline(
      "glap_active_pm_cost_at_1pct_loss",
      format_double(100.0 * (glap_lossy - glap_clean) / glap_clean, 2) + "%");
  report.write();

  std::printf("\nexpected: GLAP's active-PM footprint and overload control "
              "degrade only mildly through 1%% loss (gossip redundancy "
              "re-covers dropped exchanges) and visibly at 5%%; the "
              "threshold baselines lose proportionally more exchanges "
              "because a dropped reply abandons the whole round.\n");
  return 0;
}
