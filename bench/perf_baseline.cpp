// Perf-trajectory baseline: times the Q-table micro-kernels (Bellman
// update, Algorithm 2 merge_average, Fig. 5 cosine similarity) plus one
// end-to-end default 150-PM GLAP experiment, and emits a JSON record.
//
// The committed BENCH_qtable.json at the repo root accumulates one entry
// per milestone (starting with the hash-map seed), so every future PR can
// be measured against the same kernel set on the same machine:
//
//   build-release/bench/perf_baseline [label] >> /dev/stdout
//
// With --engine-scaling [label] it instead times GLAP rounds/sec on the
// serial engine and the wave-parallel engine at 1/2/4/8 threads (150-PM
// and 1000-PM clusters, reduced round counts) and emits the scaling
// record collected in BENCH_engine.json.
//
// With --scale [label] it sweeps cluster sizes 1k/10k/100k PMs, timing
// the serial reference engine (quiescence off) against the event-driven
// engine with quiescence on (DESIGN.md §12) on a stable-heavy workload,
// and reports rounds/sec, speedup, mean parked fraction and RSS. The
// record is collected in BENCH_scale.json and mirrored to
// results/perf_scale.json. Sizes run ascending because VmHWM (the peak
// RSS readout) is monotone within a process.
//
// Build in Release (-O3); see scripts/ci.sh and README "Performance".
//
// glap-lint: allow-file(wall-clock): throughput benches time kernels and
// rounds by design; wall-clock readings are reported, never fed back into
// simulation state, so the seed-purity contract is untouched.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "qlearn/qtable.hpp"

namespace {

std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

namespace {

using namespace glap;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fills `table` with `entries` distinct-ish random (state, action) pairs.
qlearn::QTable make_table(int entries, std::uint64_t seed) {
  qlearn::QTable table;
  Rng rng(seed);
  for (int i = 0; i < entries; ++i) {
    const auto s = qlearn::State::from_index(
        static_cast<std::uint16_t>(rng.bounded(qlearn::kLevelPairCount)));
    const auto a = qlearn::Action::from_index(
        static_cast<std::uint16_t>(rng.bounded(qlearn::kLevelPairCount)));
    table.set(s, a, rng.uniform());
  }
  return table;
}

/// ns/op for random Bellman updates over the full state space.
double time_update() {
  qlearn::QTable table;
  const qlearn::QLearningParams params;
  Rng rng(1);
  std::vector<qlearn::State> states;
  for (std::uint16_t i = 0; i < qlearn::kLevelPairCount; ++i)
    states.push_back(qlearn::State::from_index(i));
  constexpr int kOps = 2'000'000;
  const auto start = Clock::now();
  for (int i = 0; i < kOps; ++i) {
    const auto s = states[rng.bounded(states.size())];
    const auto a = states[rng.bounded(states.size())];
    const auto next = states[rng.bounded(states.size())];
    table.update(s, a, 4.0, next, params);
  }
  const double elapsed = seconds_since(start);
  if (table.size() == 0) std::abort();  // keep the work observable
  return elapsed / kOps * 1e9;
}

/// ns/op for merge_average of two ~2048-entry tables. The destination
/// copies are rebuilt outside the timed region so only the merge is timed.
double time_merge_2048() {
  const qlearn::QTable a = make_table(1024, 2);
  const qlearn::QTable b = make_table(1024, 3);
  constexpr std::size_t kPool = 64;
  constexpr int kBatches = 200;
  std::vector<qlearn::QTable> pool(kPool, a);
  double elapsed = 0.0;
  std::size_t guard = 0;
  for (int batch = 0; batch < kBatches; ++batch) {
    for (auto& t : pool) t = a;  // refill, untimed
    const auto start = Clock::now();
    for (auto& t : pool) t.merge_average(b);
    elapsed += seconds_since(start);
    guard += pool.back().size();
  }
  if (guard == 0) std::abort();
  return elapsed / (kPool * kBatches) * 1e9;
}

/// ns/op for cosine similarity of two 2048-entry tables.
double time_cosine_2048() {
  const qlearn::QTable a = make_table(2048, 4);
  const qlearn::QTable b = make_table(2048, 5);
  constexpr int kOps = 20'000;
  double guard = 0.0;
  const auto start = Clock::now();
  for (int i = 0; i < kOps; ++i) guard += qlearn::cosine_similarity(a, b);
  const double elapsed = seconds_since(start);
  if (guard < 0.0) std::abort();
  return elapsed / kOps * 1e9;
}

/// Rounds/sec of the default GLAP experiment at 150 PMs (720 evaluation
/// rounds + 700 warmup rounds with the full learning/aggregation stack).
double time_end_to_end(double* out_rounds) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = 150;
  config.fit_glap_phases_to_warmup();
  const double total_rounds =
      static_cast<double>(config.warmup_rounds + config.rounds);
  const auto start = Clock::now();
  const auto result = harness::run_experiment(config);
  const double elapsed = seconds_since(start);
  if (result.rounds.size() != config.rounds) std::abort();
  *out_rounds = total_rounds;
  return total_rounds / elapsed;
}

/// Rounds/sec of a reduced GLAP run; engine_threads == 0 means the serial
/// reference engine (parallel mode never enabled).
double time_glap_rounds_per_sec(std::size_t pm_count, sim::Round warmup,
                                sim::Round eval, std::size_t engine_threads) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = pm_count;
  config.warmup_rounds = warmup;
  config.rounds = eval;
  config.engine_threads = engine_threads > 0 ? engine_threads : 1;
  config.fit_glap_phases_to_warmup();
  const double total_rounds = static_cast<double>(warmup + eval);
  const auto start = Clock::now();
  const auto result = harness::run_experiment(config);
  const double elapsed = seconds_since(start);
  if (result.rounds.size() != config.rounds) std::abort();
  return total_rounds / elapsed;
}

int run_engine_scaling(const std::string& label) {
  struct Size {
    const char* name;
    std::size_t pms;
    sim::Round warmup;
    sim::Round eval;
  };
  // Reduced round counts keep the 5 runs per size tractable; scaling is
  // a throughput ratio, so the window length does not bias it.
  const Size sizes[] = {{"glap_150pm", 150, 200, 150},
                        {"glap_1000pm", 1000, 100, 100}};
  const std::size_t threads[] = {1, 2, 4, 8};

  harness::BenchReport report("perf_engine_scaling",
                              "Engine scaling — GLAP rounds/sec by thread "
                              "count (host-dependent)");
  report.add_headline("label", label);
  report.add_headline(
      "host_hardware_threads",
      std::to_string(std::thread::hardware_concurrency()));

  std::printf("{\n");
  std::printf("  \"label\": \"%s\",\n", label.c_str());
  std::printf("  \"host_hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  for (const Size& size : sizes) {
    std::fprintf(stderr, "[perf_baseline] %s serial...\n", size.name);
    const double serial =
        time_glap_rounds_per_sec(size.pms, size.warmup, size.eval, 0);
    std::printf("  \"%s_rounds\": %u,\n", size.name,
                static_cast<unsigned>(size.warmup + size.eval));
    std::printf("  \"%s_serial_rounds_per_sec\": %.2f,\n", size.name, serial);
    report.add_headline(std::string(size.name) + "_serial_rounds_per_sec",
                        fmt("%.2f", serial));
    for (std::size_t t : threads) {
      std::fprintf(stderr, "[perf_baseline] %s threads=%zu...\n", size.name,
                   t);
      const double rps =
          time_glap_rounds_per_sec(size.pms, size.warmup, size.eval, t);
      std::printf("  \"%s_t%zu_rounds_per_sec\": %.2f,\n", size.name, t, rps);
      std::printf("  \"%s_t%zu_speedup_vs_serial\": %.2f%s\n", size.name, t,
                  rps / serial,
                  (&size == &sizes[1] && t == threads[3]) ? "" : ",");
      report.add_headline(std::string(size.name) + "_t" + std::to_string(t) +
                              "_rounds_per_sec",
                          fmt("%.2f", rps));
      report.add_headline(std::string(size.name) + "_t" + std::to_string(t) +
                              "_speedup_vs_serial",
                          fmt("%.2f", rps / serial));
    }
  }
  std::printf("}\n");
  report.write();
  return 0;
}

// ---- --scale: serial vs event+quiescence across cluster sizes ----------

/// Reads a "Key:  <n> kB" line from /proc/self/status, in MiB (0.0 when
/// unavailable, e.g. non-Linux hosts).
double proc_status_mib(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  const std::size_t len = std::strlen(key);
  while (std::getline(in, line))
    if (line.compare(0, len, key) == 0 && line.size() > len &&
        line[len] == ':')
      return std::atof(line.c_str() + len + 1) / 1024.0;
  return 0.0;
}

std::string cpu_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos && colon + 2 <= line.size())
        return line.substr(colon + 2);
    }
  return "unknown";
}

struct ScaleRun {
  double rounds_per_sec = 0.0;
  double elapsed_s = 0.0;
  double parked_fraction = 0.0;  ///< mean quiescent PMs / pm_count (eval)
  double rss_hwm_mib = 0.0;      ///< process peak RSS after the run
  std::uint64_t migrations = 0;
  std::uint32_t final_active_pms = 0;
};

/// One GLAP run for the scale sweep. `event` selects the event-driven
/// scheduler with quiescence on; otherwise the serial reference engine
/// with quiescence off. Workload is stable-heavy: the quiescence payoff
/// targets steady-state fleets, and the demand-epsilon wake rule needs
/// most VMs to sit inside the epsilon band.
ScaleRun run_scale_cell(std::size_t pm_count, sim::Round warmup,
                        sim::Round eval, bool event) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = pm_count;
  config.warmup_rounds = warmup;
  config.rounds = eval;
  config.workload.w_stable = 0.70;
  config.workload.w_diurnal = 0.15;
  config.workload.w_random_walk = 0.10;
  config.workload.w_bursty = 0.04;
  config.workload.w_spike = 0.01;
  if (event) {
    config.event_engine = true;
    config.glap.quiescence.enabled = true;
    config.glap.quiescence.demand_epsilon = 0.15;
    config.glap.quiescence.idle_rounds = 8;
  }
  config.fit_glap_phases_to_warmup();

  ScaleRun out;
  const auto start = Clock::now();
  const auto result = harness::run_experiment(config);
  out.elapsed_s = seconds_since(start);
  if (result.rounds.size() != config.rounds) std::abort();
  out.rounds_per_sec = static_cast<double>(warmup + eval) / out.elapsed_s;
  out.parked_fraction =
      result.mean_quiescent_pms() / static_cast<double>(pm_count);
  out.rss_hwm_mib = proc_status_mib("VmHWM");
  out.migrations = result.total_migrations;
  out.final_active_pms = result.final_active_pms;
  return out;
}

int run_scale(const std::string& label) {
  struct Size {
    const char* name;
    std::size_t pms;
    sim::Round warmup;
    sim::Round eval;
  };
  // Ascending sizes (VmHWM is monotone); the evaluation window dominates
  // the round budget because parking only begins after consolidation
  // starts. 100k runs a shorter window to bound the sweep's wall-clock.
  const Size sizes[] = {{"glap_1k", 1'000, 60, 1000},
                        {"glap_10k", 10'000, 60, 1000},
                        {"glap_100k", 100'000, 60, 400}};

  harness::BenchReport report(
      "perf_scale",
      "Scale sweep — serial engine vs event engine + quiescence "
      "(host-dependent)");
  report.add_headline("label", label);
  report.add_headline("machine", cpu_model_name());
  report.add_headline(
      "host_hardware_threads",
      std::to_string(std::thread::hardware_concurrency()));

  std::printf("{\n");
  std::printf("  \"label\": \"%s\",\n", label.c_str());
  std::printf("  \"machine\": \"%s\",\n", cpu_model_name().c_str());
  std::printf("  \"host_hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  for (const Size& size : sizes) {
    std::fprintf(stderr, "[perf_baseline] %s serial...\n", size.name);
    const ScaleRun serial =
        run_scale_cell(size.pms, size.warmup, size.eval, /*event=*/false);
    std::fprintf(stderr, "[perf_baseline] %s event+quiescence...\n",
                 size.name);
    const ScaleRun event =
        run_scale_cell(size.pms, size.warmup, size.eval, /*event=*/true);
    const double speedup = event.rounds_per_sec / serial.rounds_per_sec;

    std::printf("  \"%s_rounds\": %u,\n", size.name,
                static_cast<unsigned>(size.warmup + size.eval));
    std::printf("  \"%s_serial_rounds_per_sec\": %.2f,\n", size.name,
                serial.rounds_per_sec);
    std::printf("  \"%s_event_rounds_per_sec\": %.2f,\n", size.name,
                event.rounds_per_sec);
    std::printf("  \"%s_event_speedup\": %.2f,\n", size.name, speedup);
    std::printf("  \"%s_event_parked_fraction\": %.3f,\n", size.name,
                event.parked_fraction);
    std::printf("  \"%s_migrations_serial\": %llu,\n", size.name,
                static_cast<unsigned long long>(serial.migrations));
    std::printf("  \"%s_migrations_event\": %llu,\n", size.name,
                static_cast<unsigned long long>(event.migrations));
    std::printf("  \"%s_rss_hwm_mib\": %.1f%s\n", size.name,
                event.rss_hwm_mib, (&size == &sizes[2]) ? "" : ",");

    const std::string n(size.name);
    report.add_headline(n + "_rounds",
                        std::to_string(size.warmup + size.eval));
    report.add_headline(n + "_serial_rounds_per_sec",
                        fmt("%.2f", serial.rounds_per_sec));
    report.add_headline(n + "_event_rounds_per_sec",
                        fmt("%.2f", event.rounds_per_sec));
    report.add_headline(n + "_event_speedup", fmt("%.2f", speedup));
    report.add_headline(n + "_event_parked_fraction",
                        fmt("%.3f", event.parked_fraction));
    report.add_headline(n + "_rss_hwm_mib", fmt("%.1f", event.rss_hwm_mib));
  }
  std::printf("}\n");
  report.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--engine-scaling") == 0)
    return run_engine_scaling(argc > 2 ? argv[2] : "current");
  if (argc > 1 && std::strcmp(argv[1], "--scale") == 0)
    return run_scale(argc > 2 ? argv[2] : "current");
  const std::string label = argc > 1 ? argv[1] : "current";

  std::fprintf(stderr, "[perf_baseline] qtable update...\n");
  const double update_ns = time_update();
  std::fprintf(stderr, "[perf_baseline] merge_average/2048...\n");
  const double merge_ns = time_merge_2048();
  std::fprintf(stderr, "[perf_baseline] cosine_similarity/2048...\n");
  const double cosine_ns = time_cosine_2048();
  std::fprintf(stderr, "[perf_baseline] end-to-end 150-PM GLAP run...\n");
  double total_rounds = 0.0;
  const double rounds_per_sec = time_end_to_end(&total_rounds);

  std::printf("{\n");
  std::printf("  \"label\": \"%s\",\n", label.c_str());
  std::printf("  \"qtable_update_ns\": %.1f,\n", update_ns);
  std::printf("  \"qtable_merge_average_2048_ns\": %.1f,\n", merge_ns);
  std::printf("  \"qtable_cosine_similarity_2048_ns\": %.1f,\n", cosine_ns);
  std::printf("  \"glap_150pm_rounds\": %.0f,\n", total_rounds);
  std::printf("  \"glap_150pm_rounds_per_sec\": %.2f\n", rounds_per_sec);
  std::printf("}\n");

  harness::BenchReport report(
      "perf_baseline", "Perf baseline — Q-table kernels and end-to-end "
                       "GLAP throughput (host-dependent)");
  report.add_headline("label", label);
  report.add_headline("qtable_update_ns", fmt("%.1f", update_ns));
  report.add_headline("qtable_merge_average_2048_ns", fmt("%.1f", merge_ns));
  report.add_headline("qtable_cosine_similarity_2048_ns",
                      fmt("%.1f", cosine_ns));
  report.add_headline("glap_150pm_rounds", fmt("%.0f", total_rounds));
  report.add_headline("glap_150pm_rounds_per_sec", fmt("%.2f", rounds_per_sec));
  report.write();
  return 0;
}
