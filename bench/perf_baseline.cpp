// Perf-trajectory baseline: times the Q-table micro-kernels (Bellman
// update, Algorithm 2 merge_average, Fig. 5 cosine similarity) plus one
// end-to-end default 150-PM GLAP experiment, and emits a JSON record.
//
// The committed BENCH_qtable.json at the repo root accumulates one entry
// per milestone (starting with the hash-map seed), so every future PR can
// be measured against the same kernel set on the same machine:
//
//   build-release/bench/perf_baseline [label] >> /dev/stdout
//
// With --engine-scaling [label] it instead times GLAP rounds/sec on the
// serial engine and the wave-parallel engine at 1/2/4/8 threads (150-PM
// and 1000-PM clusters, reduced round counts) and emits the scaling
// record collected in BENCH_engine.json.
//
// Build in Release (-O3); see scripts/ci.sh and README "Performance".
//
// glap-lint: allow-file(wall-clock): throughput benches time kernels and
// rounds by design; wall-clock readings are reported, never fed back into
// simulation state, so the seed-purity contract is untouched.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "qlearn/qtable.hpp"

namespace {

std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

namespace {

using namespace glap;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Fills `table` with `entries` distinct-ish random (state, action) pairs.
qlearn::QTable make_table(int entries, std::uint64_t seed) {
  qlearn::QTable table;
  Rng rng(seed);
  for (int i = 0; i < entries; ++i) {
    const auto s = qlearn::State::from_index(
        static_cast<std::uint16_t>(rng.bounded(qlearn::kLevelPairCount)));
    const auto a = qlearn::Action::from_index(
        static_cast<std::uint16_t>(rng.bounded(qlearn::kLevelPairCount)));
    table.set(s, a, rng.uniform());
  }
  return table;
}

/// ns/op for random Bellman updates over the full state space.
double time_update() {
  qlearn::QTable table;
  const qlearn::QLearningParams params;
  Rng rng(1);
  std::vector<qlearn::State> states;
  for (std::uint16_t i = 0; i < qlearn::kLevelPairCount; ++i)
    states.push_back(qlearn::State::from_index(i));
  constexpr int kOps = 2'000'000;
  const auto start = Clock::now();
  for (int i = 0; i < kOps; ++i) {
    const auto s = states[rng.bounded(states.size())];
    const auto a = states[rng.bounded(states.size())];
    const auto next = states[rng.bounded(states.size())];
    table.update(s, a, 4.0, next, params);
  }
  const double elapsed = seconds_since(start);
  if (table.size() == 0) std::abort();  // keep the work observable
  return elapsed / kOps * 1e9;
}

/// ns/op for merge_average of two ~2048-entry tables. The destination
/// copies are rebuilt outside the timed region so only the merge is timed.
double time_merge_2048() {
  const qlearn::QTable a = make_table(1024, 2);
  const qlearn::QTable b = make_table(1024, 3);
  constexpr std::size_t kPool = 64;
  constexpr int kBatches = 200;
  std::vector<qlearn::QTable> pool(kPool, a);
  double elapsed = 0.0;
  std::size_t guard = 0;
  for (int batch = 0; batch < kBatches; ++batch) {
    for (auto& t : pool) t = a;  // refill, untimed
    const auto start = Clock::now();
    for (auto& t : pool) t.merge_average(b);
    elapsed += seconds_since(start);
    guard += pool.back().size();
  }
  if (guard == 0) std::abort();
  return elapsed / (kPool * kBatches) * 1e9;
}

/// ns/op for cosine similarity of two 2048-entry tables.
double time_cosine_2048() {
  const qlearn::QTable a = make_table(2048, 4);
  const qlearn::QTable b = make_table(2048, 5);
  constexpr int kOps = 20'000;
  double guard = 0.0;
  const auto start = Clock::now();
  for (int i = 0; i < kOps; ++i) guard += qlearn::cosine_similarity(a, b);
  const double elapsed = seconds_since(start);
  if (guard < 0.0) std::abort();
  return elapsed / kOps * 1e9;
}

/// Rounds/sec of the default GLAP experiment at 150 PMs (720 evaluation
/// rounds + 700 warmup rounds with the full learning/aggregation stack).
double time_end_to_end(double* out_rounds) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = 150;
  config.fit_glap_phases_to_warmup();
  const double total_rounds =
      static_cast<double>(config.warmup_rounds + config.rounds);
  const auto start = Clock::now();
  const auto result = harness::run_experiment(config);
  const double elapsed = seconds_since(start);
  if (result.rounds.size() != config.rounds) std::abort();
  *out_rounds = total_rounds;
  return total_rounds / elapsed;
}

/// Rounds/sec of a reduced GLAP run; engine_threads == 0 means the serial
/// reference engine (parallel mode never enabled).
double time_glap_rounds_per_sec(std::size_t pm_count, sim::Round warmup,
                                sim::Round eval, std::size_t engine_threads) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = pm_count;
  config.warmup_rounds = warmup;
  config.rounds = eval;
  config.engine_threads = engine_threads > 0 ? engine_threads : 1;
  config.fit_glap_phases_to_warmup();
  const double total_rounds = static_cast<double>(warmup + eval);
  const auto start = Clock::now();
  const auto result = harness::run_experiment(config);
  const double elapsed = seconds_since(start);
  if (result.rounds.size() != config.rounds) std::abort();
  return total_rounds / elapsed;
}

int run_engine_scaling(const std::string& label) {
  struct Size {
    const char* name;
    std::size_t pms;
    sim::Round warmup;
    sim::Round eval;
  };
  // Reduced round counts keep the 5 runs per size tractable; scaling is
  // a throughput ratio, so the window length does not bias it.
  const Size sizes[] = {{"glap_150pm", 150, 200, 150},
                        {"glap_1000pm", 1000, 100, 100}};
  const std::size_t threads[] = {1, 2, 4, 8};

  harness::BenchReport report("perf_engine_scaling",
                              "Engine scaling — GLAP rounds/sec by thread "
                              "count (host-dependent)");
  report.add_headline("label", label);
  report.add_headline(
      "host_hardware_threads",
      std::to_string(std::thread::hardware_concurrency()));

  std::printf("{\n");
  std::printf("  \"label\": \"%s\",\n", label.c_str());
  std::printf("  \"host_hardware_threads\": %u,\n",
              std::thread::hardware_concurrency());
  for (const Size& size : sizes) {
    std::fprintf(stderr, "[perf_baseline] %s serial...\n", size.name);
    const double serial =
        time_glap_rounds_per_sec(size.pms, size.warmup, size.eval, 0);
    std::printf("  \"%s_rounds\": %u,\n", size.name,
                static_cast<unsigned>(size.warmup + size.eval));
    std::printf("  \"%s_serial_rounds_per_sec\": %.2f,\n", size.name, serial);
    report.add_headline(std::string(size.name) + "_serial_rounds_per_sec",
                        fmt("%.2f", serial));
    for (std::size_t t : threads) {
      std::fprintf(stderr, "[perf_baseline] %s threads=%zu...\n", size.name,
                   t);
      const double rps =
          time_glap_rounds_per_sec(size.pms, size.warmup, size.eval, t);
      std::printf("  \"%s_t%zu_rounds_per_sec\": %.2f,\n", size.name, t, rps);
      std::printf("  \"%s_t%zu_speedup_vs_serial\": %.2f%s\n", size.name, t,
                  rps / serial,
                  (&size == &sizes[1] && t == threads[3]) ? "" : ",");
      report.add_headline(std::string(size.name) + "_t" + std::to_string(t) +
                              "_rounds_per_sec",
                          fmt("%.2f", rps));
      report.add_headline(std::string(size.name) + "_t" + std::to_string(t) +
                              "_speedup_vs_serial",
                          fmt("%.2f", rps / serial));
    }
  }
  std::printf("}\n");
  report.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--engine-scaling") == 0)
    return run_engine_scaling(argc > 2 ? argv[2] : "current");
  const std::string label = argc > 1 ? argv[1] : "current";

  std::fprintf(stderr, "[perf_baseline] qtable update...\n");
  const double update_ns = time_update();
  std::fprintf(stderr, "[perf_baseline] merge_average/2048...\n");
  const double merge_ns = time_merge_2048();
  std::fprintf(stderr, "[perf_baseline] cosine_similarity/2048...\n");
  const double cosine_ns = time_cosine_2048();
  std::fprintf(stderr, "[perf_baseline] end-to-end 150-PM GLAP run...\n");
  double total_rounds = 0.0;
  const double rounds_per_sec = time_end_to_end(&total_rounds);

  std::printf("{\n");
  std::printf("  \"label\": \"%s\",\n", label.c_str());
  std::printf("  \"qtable_update_ns\": %.1f,\n", update_ns);
  std::printf("  \"qtable_merge_average_2048_ns\": %.1f,\n", merge_ns);
  std::printf("  \"qtable_cosine_similarity_2048_ns\": %.1f,\n", cosine_ns);
  std::printf("  \"glap_150pm_rounds\": %.0f,\n", total_rounds);
  std::printf("  \"glap_150pm_rounds_per_sec\": %.2f\n", rounds_per_sec);
  std::printf("}\n");

  harness::BenchReport report(
      "perf_baseline", "Perf baseline — Q-table kernels and end-to-end "
                       "GLAP throughput (host-dependent)");
  report.add_headline("label", label);
  report.add_headline("qtable_update_ns", fmt("%.1f", update_ns));
  report.add_headline("qtable_merge_average_2048_ns", fmt("%.1f", merge_ns));
  report.add_headline("qtable_cosine_similarity_2048_ns",
                      fmt("%.1f", cosine_ns));
  report.add_headline("glap_150pm_rounds", fmt("%.0f", total_rounds));
  report.add_headline("glap_150pm_rounds_per_sec", fmt("%.2f", rounds_per_sec));
  report.write();
  return 0;
}
