// Fig. 7 — the number of overloaded PMs.
//
// Per the paper: the overloaded-PM count is sampled at the end of every
// round in every execution, and the median / 10th / 90th percentiles of
// the pooled samples are reported per (size, ratio, algorithm).
#include "bench_util.hpp"

using namespace glap;
using bench::Algorithm;

int main() {
  const harness::BenchScale scale = harness::bench_scale_from_env();
  bench::print_bench_header(
      "Fig. 7 — overloaded PMs per round (median, p10, p90)", scale);

  ThreadPool pool;
  const auto cells = bench::build_cells(scale, bench::all_algorithms());
  const auto results = harness::run_cells(cells, scale.repetitions, pool);

  ConsoleTable table(
      {"cell", "algorithm", "median", "p10", "p90", "mean"});
  for (const auto& cell : results) {
    const auto summary = cell.pooled_round_summary(
        [](const harness::RunResult& r) { return r.overloaded_series(); });
    table.add_row({bench::cell_label(cell.config),
                   std::string(to_string(cell.config.algorithm)),
                   format_double(summary.median, 1),
                   format_double(summary.p10, 1),
                   format_double(summary.p90, 1),
                   format_double(summary.mean, 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  harness::BenchReport report(
      "fig7_overloaded",
      "Fig. 7 — overloaded PMs per round (median, p10, p90)");
  report.set_scale(scale);
  report.add_table("overloaded", table);

  // Headline reduction percentages (paper: GLAP cuts overloaded PMs by
  // 43% / 78% / 73% vs EcoCloud / GRMP / PABFD).
  const double paper_reduction[] = {43.0, 78.0, 73.0};
  ConsoleTable reductions({"vs", "paper", "measured"});
  std::printf("\nGLAP overload reduction vs each baseline (mean over "
              "cells, by mean overloaded count):\n");
  std::size_t b = 0;
  for (Algorithm baseline : {Algorithm::kEcoCloud, Algorithm::kGrmp,
                             Algorithm::kPabfd}) {
    double glap_sum = 0.0, base_sum = 0.0;
    for (const auto& cell : results) {
      const double mean = cell.mean_of(
          [](const harness::RunResult& r) { return r.mean_overloaded(); });
      if (cell.config.algorithm == Algorithm::kGlap) glap_sum += mean;
      if (cell.config.algorithm == baseline) base_sum += mean;
    }
    const double reduction =
        base_sum > 0.0 ? 100.0 * (1.0 - glap_sum / base_sum) : 0.0;
    std::printf("  vs %-8s: %5.1f%% fewer overloaded PMs\n",
                std::string(to_string(baseline)).c_str(), reduction);
    reductions.add_row({std::string(to_string(baseline)),
                        "-" + format_double(paper_reduction[b], 0) + "%",
                        format_double(-reduction, 1) + "%"});
    ++b;
  }
  report.add_table("reductions", reductions);
  report.write();
  std::printf("\nexpected shape (paper): GLAP smallest everywhere; GRMP "
              "worst; stable across sizes and ratios.\n");
  return 0;
}
