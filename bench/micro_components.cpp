// Google-benchmark microbenchmarks for the hot components: Q-table
// operations, Cyclon rounds, trace generation, demand observation, and
// the local trainer — the per-round costs that bound simulator throughput.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "cloud/datacenter.hpp"
#include "common/rng.hpp"
#include "core/learning.hpp"
#include "overlay/cyclon.hpp"
#include "qlearn/qtable.hpp"
#include "trace/google_synth.hpp"

namespace {

using namespace glap;

void BM_QTableUpdate(benchmark::State& state) {
  qlearn::QTable table;
  const qlearn::QLearningParams params;
  Rng rng(1);
  std::vector<qlearn::State> states;
  for (std::uint16_t i = 0; i < qlearn::kLevelPairCount; ++i)
    states.push_back(qlearn::State::from_index(i));
  for (auto _ : state) {
    const auto s = states[rng.bounded(states.size())];
    const auto a = states[rng.bounded(states.size())];
    const auto next = states[rng.bounded(states.size())];
    table.update(s, a, 4.0, next, params);
  }
}
BENCHMARK(BM_QTableUpdate);

void BM_QTableMergeAverage(benchmark::State& state) {
  qlearn::QTable a, b;
  Rng rng(2);
  for (int i = 0; i < state.range(0); ++i) {
    const auto s = qlearn::State::from_index(
        static_cast<std::uint16_t>(rng.bounded(qlearn::kLevelPairCount)));
    const auto act = qlearn::Action::from_index(
        static_cast<std::uint16_t>(rng.bounded(qlearn::kLevelPairCount)));
    (i % 2 ? a : b).set(s, act, rng.uniform());
  }
  // merge_average mutates its destination, so each iteration needs a fresh
  // copy of `a` — but copying must stay outside the timed region or it
  // dominates the merge being measured. Rebuild a pool of copies with the
  // timer paused, amortizing the pause overhead across the pool.
  constexpr std::size_t kPool = 64;
  std::vector<qlearn::QTable> pool(kPool, a);
  std::size_t next = 0;
  for (auto _ : state) {
    pool[next].merge_average(b);
    benchmark::DoNotOptimize(pool[next].size());
    if (++next == kPool) {
      state.PauseTiming();
      for (auto& t : pool) t = a;
      next = 0;
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_QTableMergeAverage)->Arg(256)->Arg(2048);

void BM_QTableCosineSimilarity(benchmark::State& state) {
  qlearn::QTable a, b;
  Rng rng(3);
  for (int i = 0; i < 2048; ++i) {
    const auto s = qlearn::State::from_index(
        static_cast<std::uint16_t>(rng.bounded(qlearn::kLevelPairCount)));
    const auto act = qlearn::Action::from_index(
        static_cast<std::uint16_t>(rng.bounded(qlearn::kLevelPairCount)));
    a.set(s, act, rng.uniform());
    b.set(s, act, rng.uniform());
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(qlearn::cosine_similarity(a, b));
}
BENCHMARK(BM_QTableCosineSimilarity);

void BM_CyclonRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Engine engine(n, 4);
  overlay::CyclonProtocol::install(engine, {}, 4);
  for (auto _ : state) engine.step();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CyclonRound)->Arg(500)->Arg(2000);

void BM_TraceGeneration(benchmark::State& state) {
  const trace::GoogleSynth synth({}, 5);
  std::vector<trace::DemandModelPtr> models;
  for (std::uint64_t v = 0; v < 1000; ++v)
    models.push_back(synth.make_model(v));
  for (auto _ : state) {
    Resources sum;
    for (auto& m : models) sum += m->next();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_TraceGeneration);

void BM_ObserveDemands(benchmark::State& state) {
  const auto pms = static_cast<std::size_t>(state.range(0));
  cloud::DataCenter dc(pms, pms * 3, cloud::DataCenterConfig{});
  Rng rng(6);
  dc.place_randomly(rng);
  std::vector<Resources> demands(pms * 3, Resources{0.3, 0.3});
  for (auto _ : state) {
    dc.observe_demands(demands);
    benchmark::DoNotOptimize(dc.current_usage(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pms * 3));
}
BENCHMARK(BM_ObserveDemands)->Arg(500)->Arg(2000);

void BM_LocalTrainerRound(benchmark::State& state) {
  core::GlapConfig config;
  core::LocalTrainer trainer(config, {2660.0, 4096.0}, Rng(7));
  Rng rng(8);
  std::vector<core::VmProfile> pool;
  for (int i = 0; i < 40; ++i) {
    const Resources alloc{500.0, 613.0};
    const double avg = rng.uniform(0.1, 0.8);
    const double cur = rng.uniform(0.1, 0.9);
    pool.push_back({Resources{cur, 0.3}.scaled_by(alloc),
                    Resources{avg, 0.3}.scaled_by(alloc), alloc});
  }
  core::QTablePair tables;
  for (auto _ : state) trainer.train_round(pool, tables);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(config.train_iterations_per_round));
}
BENCHMARK(BM_LocalTrainerRound);

}  // namespace

// Custom main: unless the caller passes their own --benchmark_out, mirror
// the results into results/micro_components.json (google-benchmark's own
// JSON schema) so the bench lands next to the BenchReport files.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  std::string out_flag, fmt_flag;
  if (!has_out) {
    const char* env = std::getenv("GLAP_RESULTS_DIR");
    const std::string dir = env != nullptr && *env != '\0' ? env : "results";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    out_flag = "--benchmark_out=" + dir + "/micro_components.json";
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
