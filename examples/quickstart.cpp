// Quickstart: run GLAP on a small simulated data center and print the
// headline metrics. Demonstrates the minimal public-API path:
// ExperimentConfig -> run_experiment -> RunResult.
#include <cstdio>

#include "harness/runner.hpp"

int main() {
  using namespace glap;

  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = 200;
  config.vm_ratio = 3;
  config.rounds = 240;         // 8 simulated hours
  config.warmup_rounds = 200;  // learning + aggregation pre-phase
  config.fit_glap_phases_to_warmup();
  config.seed = 7;

  std::printf("running %s ...\n", config.label().c_str());
  const harness::RunResult result = harness::run_experiment(config);

  std::printf("rounds sampled        : %zu\n", result.rounds.size());
  std::printf("final active PMs      : %u / %zu\n", result.final_active_pms,
              config.pm_count);
  std::printf("final overloaded PMs  : %u\n", result.final_overloaded_pms);
  std::printf("BFD reference packing : %u PMs\n", result.final_bfd_bins);
  std::printf("mean overloaded/round : %.2f\n", result.mean_overloaded());
  std::printf("mean active/round     : %.2f\n", result.mean_active());
  std::printf("total migrations      : %llu\n",
              static_cast<unsigned long long>(result.total_migrations));
  std::printf("migration energy      : %.1f J\n", result.migration_energy_j);
  std::printf("SLAVO=%.6f SLALM=%.6f SLAV=%.8f\n", result.slavo,
              result.slalm, result.slav);
  std::printf("gossip traffic        : %llu msgs, %llu bytes\n",
              static_cast<unsigned long long>(result.messages),
              static_cast<unsigned long long>(result.bytes));
  return 0;
}
