// Sweep CLI: run an arbitrary (algorithm, size, ratio, rounds, repeats)
// experiment from the command line and emit per-round metrics as CSV —
// the integration point for plotting the paper's figures with external
// tooling.
//
// Usage: sweep_cli <glap|grmp|ecocloud|pabfd|none> [pms] [ratio] [rounds]
//                  [warmup] [repeats] [seed]
// Output: CSV on stdout (rep,round,active,overloaded,migrations_cum,
//         migration_energy_j) followed by a '#'-prefixed summary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/csv.hpp"
#include "common/thread_pool.hpp"
#include "harness/sweep.hpp"

using namespace glap;

namespace {

harness::Algorithm parse_algorithm(const char* name) {
  if (!std::strcmp(name, "glap")) return harness::Algorithm::kGlap;
  if (!std::strcmp(name, "grmp")) return harness::Algorithm::kGrmp;
  if (!std::strcmp(name, "ecocloud")) return harness::Algorithm::kEcoCloud;
  if (!std::strcmp(name, "pabfd")) return harness::Algorithm::kPabfd;
  if (!std::strcmp(name, "none")) return harness::Algorithm::kNone;
  std::fprintf(stderr,
               "unknown algorithm '%s' (want glap|grmp|ecocloud|pabfd|none)\n",
               name);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <glap|grmp|ecocloud|pabfd|none> [pms] [ratio] "
                 "[rounds] [warmup] [repeats] [seed]\n",
                 argv[0]);
    return 2;
  }

  harness::ExperimentConfig config;
  config.algorithm = parse_algorithm(argv[1]);
  config.pm_count = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  config.vm_ratio = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 3;
  config.rounds = argc > 4
                      ? static_cast<sim::Round>(std::strtoul(argv[4], nullptr, 10))
                      : 240;
  config.warmup_rounds =
      argc > 5 ? static_cast<sim::Round>(std::strtoul(argv[5], nullptr, 10))
               : 240;
  const std::size_t repeats =
      argc > 6 ? std::strtoul(argv[6], nullptr, 10) : 1;
  config.seed = argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 42;
  config.fit_glap_phases_to_warmup();

  ThreadPool pool;
  const harness::CellResult cell = harness::run_cell(config, repeats, pool);

  CsvWriter csv(std::cout);
  csv.write_row({"rep", "round", "active", "overloaded", "migrations_cum",
                 "migration_energy_j"});
  for (std::size_t rep = 0; rep < cell.runs.size(); ++rep)
    for (const auto& s : cell.runs[rep].rounds)
      csv.write_row_values({static_cast<double>(rep),
                            static_cast<double>(s.round),
                            static_cast<double>(s.active_pms),
                            static_cast<double>(s.overloaded_pms),
                            static_cast<double>(s.migrations_cum),
                            s.migration_energy_j});

  std::printf("# %s: mean_overloaded=%.3f mean_active=%.2f "
              "migrations=%.0f slav=%.3g mig_energy_kj=%.2f\n",
              config.label().c_str(),
              cell.mean_of([](const harness::RunResult& r) {
                return r.mean_overloaded();
              }),
              cell.mean_of([](const harness::RunResult& r) {
                return r.mean_active();
              }),
              cell.mean_of([](const harness::RunResult& r) {
                return static_cast<double>(r.total_migrations);
              }),
              cell.mean_of(
                  [](const harness::RunResult& r) { return r.slav; }),
              cell.mean_of([](const harness::RunResult& r) {
                return r.migration_energy_j / 1000.0;
              }));
  return 0;
}
