// Policy transfer: train GLAP's Q-tables on one cluster, persist them as
// CSV, reload them, and show that the reloaded policy reproduces the
// exact acceptance decisions — the workflow for shipping a learned
// policy to PMs joining a cluster instead of retraining from scratch.
#include <cstdio>
#include <sstream>

#include "cloud/average_tracker.hpp"
#include "core/learning.hpp"
#include "core/qtable_pair.hpp"
#include "qlearn/serialize.hpp"
#include "trace/google_synth.hpp"

using namespace glap;

int main() {
  // --- Train on a pool of profiles sampled from the synthetic ensemble.
  const Resources pm_capacity{2660.0, 4096.0};
  core::GlapConfig config;
  core::LocalTrainer trainer(config, pm_capacity, Rng(1));

  const trace::GoogleSynth synth({}, 7);
  std::vector<core::VmProfile> pool;
  const Resources alloc{500.0, 613.0};
  for (std::uint64_t vm = 0; vm < 48; ++vm) {
    auto model = synth.make_model(vm);
    cloud::AverageTracker tracker;
    Resources current;
    for (int i = 0; i < 200; ++i) {
      current = model->next();
      tracker.observe(current);
    }
    pool.push_back({current.scaled_by(alloc),
                    tracker.average().scaled_by(alloc), alloc});
  }

  core::QTablePair tables;
  for (int round = 0; round < 150; ++round)
    trainer.train_round(pool, tables);
  std::printf("trained: %zu OUT entries, %zu IN entries\n",
              tables.out.size(), tables.in.size());

  // --- Persist and reload.
  std::ostringstream out_csv, in_csv;
  qlearn::save_qtable(tables.out, out_csv);
  qlearn::save_qtable(tables.in, in_csv);
  std::printf("serialized policy: %zu bytes (OUT) + %zu bytes (IN)\n",
              out_csv.str().size(), in_csv.str().size());

  std::istringstream out_src(out_csv.str()), in_src(in_csv.str());
  const qlearn::QTable out_loaded = qlearn::load_qtable(out_src);
  const qlearn::QTable in_loaded = qlearn::load_qtable(in_src);

  // --- The reloaded policy makes identical decisions.
  std::size_t checked = 0, agreed = 0, rejections = 0;
  for (const auto& [key, q] : tables.in.entries()) {
    const auto s = qlearn::QTable::state_of(key);
    const auto a = qlearn::QTable::action_of(key);
    const bool original_accepts = q >= 0.0;
    const bool loaded_accepts = in_loaded.value(s, a) >= 0.0;
    ++checked;
    if (original_accepts == loaded_accepts) ++agreed;
    if (!loaded_accepts) ++rejections;
  }
  std::printf("pi_in decisions: %zu/%zu identical after reload "
              "(%zu rejections in the policy)\n",
              agreed, checked, rejections);

  // Show a slice of the acceptance policy for a mid-loaded PM state.
  const qlearn::State mid{qlearn::Level::k3xHigh, qlearn::Level::kMedium};
  std::printf("\nacceptance at PM state %s:\n",
              qlearn::to_string(mid).c_str());
  for (std::size_t lvl = 0; lvl < qlearn::kLevelCount; ++lvl) {
    const qlearn::Action action{static_cast<qlearn::Level>(lvl),
                                qlearn::Level::kMedium};
    if (!in_loaded.contains(mid, action)) continue;
    const double q = in_loaded.value(mid, action);
    std::printf("  VM action (%-8s, Medium): Q=%8.2f -> %s\n",
                std::string(qlearn::to_string(action.cpu)).c_str(), q,
                q >= 0.0 ? "accept" : "reject");
  }
  return agreed == checked ? 0 : 1;
}
