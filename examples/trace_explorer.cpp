// Trace explorer: generate the synthetic Google-Cluster-like ensemble,
// print distributional statistics and histograms, and optionally export
// the materialized trace as CSV (loadable back via TraceStore::load_csv,
// the same path a user with the real Google traces would use).
//
// Usage: trace_explorer [n_vms] [rounds] [csv_path]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/stats.hpp"
#include "trace/google_synth.hpp"
#include "trace/trace_store.hpp"

int main(int argc, char** argv) {
  using namespace glap;

  std::size_t n_vms = 200;
  std::size_t rounds = 720;
  const char* csv_path = nullptr;
  if (argc > 1) n_vms = static_cast<std::size_t>(std::atol(argv[1]));
  if (argc > 2) rounds = static_cast<std::size_t>(std::atol(argv[2]));
  if (argc > 3) csv_path = argv[3];

  const trace::GoogleSynth synth({}, /*seed=*/2026);
  std::vector<trace::DemandModelPtr> owned;
  std::vector<trace::DemandModel*> models;
  for (std::size_t v = 0; v < n_vms; ++v) {
    owned.push_back(synth.make_model(v));
    models.push_back(owned.back().get());
  }
  const trace::TraceStore store = trace::TraceStore::from_models(models, rounds);

  Histogram mean_hist(0.0, 1.0, 10);
  Histogram sd_hist(0.0, 0.5, 10);
  RunningStats ensemble_cpu, ensemble_mem, volatility;
  for (std::size_t v = 0; v < n_vms; ++v) {
    RunningStats cpu;
    for (std::size_t r = 0; r < rounds; ++r) cpu.add(store.at(v, r).cpu);
    mean_hist.add(cpu.mean());
    sd_hist.add(cpu.stddev());
    ensemble_cpu.add(cpu.mean());
    volatility.add(cpu.stddev());
    ensemble_mem.add(store.series_mean(v).mem);
  }

  std::printf("synthetic Google-like ensemble: %zu VMs x %zu rounds\n\n",
              n_vms, rounds);
  std::printf("ensemble mean CPU demand : %.3f of allocation\n",
              ensemble_cpu.mean());
  std::printf("ensemble mean MEM demand : %.3f of allocation\n",
              ensemble_mem.mean());
  std::printf("mean per-VM CPU stddev   : %.3f (volatility)\n\n",
              volatility.mean());

  std::printf("distribution of per-VM mean CPU demand:\n%s\n",
              mean_hist.render(40).c_str());
  std::printf("distribution of per-VM CPU volatility (stddev):\n%s\n",
              sd_hist.render(40).c_str());

  // Show a few representative series (sparkline-style).
  std::printf("sample series (first 72 rounds, '.'<0.2 ':'<0.4 '+'<0.6 "
              "'#'<0.8 '@'>=0.8):\n");
  for (std::size_t v = 0; v < std::min<std::size_t>(8, n_vms); ++v) {
    std::printf("  vm%-3zu ", v);
    for (std::size_t r = 0; r < std::min<std::size_t>(72, rounds); ++r) {
      const double x = store.at(v, r).cpu;
      std::putchar(x < 0.2 ? '.' : x < 0.4 ? ':' : x < 0.6 ? '+'
                   : x < 0.8 ? '#' : '@');
    }
    std::printf("\n");
  }

  if (csv_path) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", csv_path);
      return 1;
    }
    store.save_csv(out);
    std::printf("\nwrote %zu x %zu trace to %s\n", n_vms, rounds, csv_path);
  }
  return 0;
}
