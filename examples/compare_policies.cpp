// Runs all four consolidation policies (GLAP, EcoCloud, GRMP, PABFD) on
// the identical workload and prints the paper's headline comparison:
// overloaded PMs, active PMs vs the BFD oracle, migrations, migration
// energy, and the SLAV metric.
#include <cstdio>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace glap;
  using harness::Algorithm;

  std::size_t pm_count = 300;
  std::size_t ratio = 3;
  if (argc > 1) pm_count = static_cast<std::size_t>(std::atol(argv[1]));
  if (argc > 2) ratio = static_cast<std::size_t>(std::atol(argv[2]));

  std::vector<harness::ExperimentConfig> cells;
  for (Algorithm algo : {Algorithm::kGlap, Algorithm::kEcoCloud,
                         Algorithm::kGrmp, Algorithm::kPabfd}) {
    harness::ExperimentConfig config;
    config.algorithm = algo;
    config.pm_count = pm_count;
    config.vm_ratio = ratio;
    config.rounds = 360;
    config.warmup_rounds = 240;
    config.fit_glap_phases_to_warmup();
    cells.push_back(config);
  }

  std::printf("comparing policies on %zu PMs, %zu VMs (ratio %zu)\n",
              pm_count, pm_count * ratio, ratio);
  ThreadPool pool;
  const auto results = harness::run_cells(cells, /*repetitions=*/3, pool);

  ConsoleTable table({"algorithm", "overloaded(mean)", "active(mean)",
                      "bfd-oracle", "migrations", "mig-energy(kJ)", "SLAV"});
  for (const auto& cell : results) {
    table.add_row(
        {std::string(to_string(cell.config.algorithm)),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return r.mean_overloaded();
         })),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return r.mean_active();
         })),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return r.final_bfd_bins;
         })),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return static_cast<double>(r.total_migrations);
         }), 0),
         format_double(cell.mean_of([](const harness::RunResult& r) {
           return r.migration_energy_j / 1000.0;
         })),
         format_compact(cell.mean_of(
             [](const harness::RunResult& r) { return r.slav; }))});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
