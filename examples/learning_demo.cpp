// Learning demo / diagnostic: runs GLAP's two-phase gossip learning on a
// small cluster, prints the per-round Q-table convergence (the Fig. 5
// signal), a digest of the learned IN-table acceptance policy (which
// (PM-state, VM-action) pairs the cluster learned to reject), and the
// consolidation gate counters.
#include <cstdio>

#include "core/glap.hpp"
#include "harness/runner.hpp"
#include "qlearn/levels.hpp"

using namespace glap;

int main() {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::kGlap;
  config.pm_count = 200;
  config.vm_ratio = 3;
  config.rounds = 240;
  config.warmup_rounds = 240;
  config.fit_glap_phases_to_warmup();
  config.track_convergence = true;
  config.seed = 11;

  // Re-create the run manually so the protocol internals stay reachable.
  cloud::DataCenter dc(config.pm_count, config.vm_count(),
                       config.datacenter);
  const trace::GoogleSynth synth(config.workload, config.seed);
  std::vector<trace::DemandModelPtr> models;
  for (std::size_t v = 0; v < config.vm_count(); ++v)
    models.push_back(synth.make_model(v));
  Rng placement_rng(hash_combine(config.seed, hash_tag("placement")));
  dc.place_randomly(placement_rng);

  sim::Engine engine(config.pm_count, config.seed);
  const auto slots =
      core::install_glap(engine, dc, config.glap, config.cyclon, config.seed);

  std::vector<Resources> demands(config.vm_count());
  auto step = [&] {
    for (std::size_t v = 0; v < demands.size(); ++v)
      demands[v] = models[v]->next().clamped(0.0, 1.0);
    dc.observe_demands(demands);
    engine.step();
    dc.end_round();
  };

  std::printf("== convergence (every 10 warmup rounds) ==\n");
  for (sim::Round r = 0; r < config.warmup_rounds; ++r) {
    step();
    if (r % 10 == 9) {
      RunningStats sim_stats;
      Rng pair_rng(hash_combine(config.seed, r));
      for (int i = 0; i < 64; ++i) {
        const auto a =
            static_cast<sim::NodeId>(pair_rng.bounded(config.pm_count));
        auto b = static_cast<sim::NodeId>(pair_rng.bounded(config.pm_count));
        if (a == b) b = (b + 1) % config.pm_count;
        sim_stats.add(core::cosine_similarity(
            engine.protocol_at<core::GossipLearningProtocol>(slots.learning, a)
                .tables(),
            engine.protocol_at<core::GossipLearningProtocol>(slots.learning, b)
                .tables()));
      }
      std::printf("round %3u  similarity %.4f\n", r + 1, sim_stats.mean());
    }
  }

  // Digest of node 0's learned IN table.
  const auto& tables =
      engine.protocol_at<core::GossipLearningProtocol>(slots.learning, 0)
          .tables();
  std::printf("\n== learned tables (node 0) ==\n");
  std::printf("out entries: %zu, in entries: %zu\n", tables.out.size(),
              tables.in.size());
  std::size_t negative = 0;
  for (const auto& [key, q] : tables.in.entries())
    if (q < 0) ++negative;
  std::printf("negative IN entries: %zu (%.1f%%)\n", negative,
              100.0 * negative / std::max<std::size_t>(1, tables.in.size()));

  std::printf("\nIN-table: fraction of known actions rejected, by PM CPU "
              "state level:\n");
  for (std::size_t lvl = 0; lvl < qlearn::kLevelCount; ++lvl) {
    std::size_t known = 0, rejected = 0;
    for (const auto& [key, q] : tables.in.entries()) {
      const auto s = qlearn::QTable::state_of(key);
      if (qlearn::level_index(s.cpu) != lvl) continue;
      ++known;
      if (q < 0) ++rejected;
    }
    std::printf("  %-9s known=%4zu rejected=%4zu\n",
                std::string(qlearn::to_string(static_cast<qlearn::Level>(lvl)))
                    .c_str(),
                known, rejected);
  }

  std::printf("\n== consolidation (240 rounds) ==\n");
  for (sim::Round r = 0; r < config.rounds; ++r) step();

  core::ConsolidationStats total;
  for (sim::NodeId n = 0; n < config.pm_count; ++n) {
    const auto& s =
        engine.protocol_at<core::GlapConsolidationProtocol>(
                  slots.consolidation, n)
            .stats();
    total.exchanges += s.exchanges;
    total.migrations += s.migrations;
    total.rejected_by_pi_in += s.rejected_by_pi_in;
    total.rejected_by_capacity += s.rejected_by_capacity;
    total.no_vm_available += s.no_vm_available;
    total.switch_offs += s.switch_offs;
  }
  std::printf("exchanges=%llu migrations=%llu pi_in_rejects=%llu "
              "capacity_rejects=%llu no_vm=%llu switch_offs=%llu\n",
              (unsigned long long)total.exchanges,
              (unsigned long long)total.migrations,
              (unsigned long long)total.rejected_by_pi_in,
              (unsigned long long)total.rejected_by_capacity,
              (unsigned long long)total.no_vm_available,
              (unsigned long long)total.switch_offs);
  std::printf("active=%zu overloaded=%zu\n", dc.active_pm_count(),
              dc.overloaded_pm_count());
  return 0;
}
